//! Tuners and the execution-phase tuning loop.
//!
//! Mirrors the search side of the paper's Fig. 2: a pluggable
//! [`SearchStrategy`] generates candidate implementations batch-wise;
//! candidates are built, executed on `n_parallel` simulators, scored (by
//! a trained score predictor or by hardware measurement), and the
//! strategy evolves the next batch from the scores. Which strategy runs
//! is selected through [`TuneOptions::strategy`]; the default
//! [`RandomSearch`](crate::RandomSearch) reproduces the historical
//! random-sampling tuner bit-for-bit.

use crate::backend::{FastCountBackend, SampledBackend, SimBackend, SimSession};
use crate::features::WindowKind;
use crate::memo::SimCache;
use crate::metrics::{ConvergenceStats, StageTimings};
use crate::pool::BatchTicket;
use crate::runner::{HardwareRunner, KernelBuilder};
use crate::score::ScorePredictor;
use crate::search::{Evaluation, SearchStrategy, StrategySpec};
use crate::CoreError;
use simtune_hw::TargetSpec;
use simtune_tensor::{ComputeDef, Schedule, SketchGenerator, SketchParams};
use std::sync::Arc;
use std::time::Instant;

/// Options of one tuning session.
#[derive(Debug, Clone)]
pub struct TuneOptions {
    /// Total candidates to evaluate.
    pub n_trials: usize,
    /// Candidates per batch (the Auto-Scheduler generates batch-wise).
    pub batch_size: usize,
    /// Parallel simulator instances.
    pub n_parallel: usize,
    /// Window policy for score normalization during inference.
    pub window: WindowKind,
    /// Base seed (drives the search strategy and, for the hardware flow,
    /// the measurement noise).
    pub seed: u64,
    /// Which [`SearchStrategy`] proposes candidates. The default
    /// [`StrategySpec::Random`] reproduces the pre-subsystem sampling
    /// loop bit-identically; [`StrategySpec::Custom`] plugs in any boxed
    /// user strategy.
    pub strategy: StrategySpec,
    /// Simulation memo cache attached to every session this tuning run
    /// creates. Share one `Arc<SimCache>` across runs (or with
    /// [`crate::CollectOptions::memo_cache`]) so candidates revisited
    /// anywhere in the workflow skip the backend entirely. `None`
    /// disables memoization.
    pub memo_cache: Option<Arc<SimCache>>,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            n_trials: 64,
            batch_size: 16,
            n_parallel: 8,
            window: WindowKind::Dynamic,
            seed: 0,
            strategy: StrategySpec::default(),
            memo_cache: None,
        }
    }
}

/// One evaluated candidate in a tuning history.
#[derive(Debug, Clone)]
pub struct TuneRecord {
    /// Genotype description.
    pub description: String,
    /// The applied schedule.
    pub schedule: Schedule,
    /// Score assigned during tuning (lower = better; predictor score or
    /// measured seconds depending on the flow).
    pub score: f64,
}

/// Result of a tuning session.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Every evaluated candidate, in evaluation order.
    pub history: Vec<TuneRecord>,
    /// Index of the best candidate in `history`.
    pub best_index: usize,
    /// Label of the strategy that drove the search.
    pub strategy: String,
    /// The strategy's convergence counters at the end of the run.
    pub convergence: ConvergenceStats,
    /// Executions submitted to the backing evaluator: simulator runs for
    /// the simulator flows, hardware measurements for
    /// [`tune_on_hardware`]. With a memo cache attached this counts
    /// submissions, not backend executions — see
    /// [`crate::SimCache::stats`] for hit/miss counters.
    pub simulations: usize,
    /// Producer-side wall time per pipeline stage. `sim_nanos` only
    /// counts time the loop *blocked* on simulation — with a
    /// pipeline-safe strategy, simulation overlapped by the build of the
    /// next batch is invisible here. Wall-clock values: identical
    /// reruns produce identical history but different timings.
    pub timings: StageTimings,
}

impl TuneResult {
    /// The best candidate's record.
    pub fn best(&self) -> &TuneRecord {
        &self.history[self.best_index]
    }
}

/// Execution-phase tuning (Fig. 4-II): candidates run **only on the
/// simulator**; a trained [`ScorePredictor`] turns statistics into
/// scores. The target hardware is not needed — the scenario that enables
/// pre-silicon tuning and cross-ISA tuning on x86 hosts.
///
/// The strategy configured in [`TuneOptions::strategy`] proposes the
/// candidates; every strategy composes with the memo cache and any
/// backend because the loop is strategy-agnostic.
///
/// # Errors
///
/// Propagates pipeline failures; individual failed candidates are
/// penalized, not fatal.
pub fn tune_with_predictor(
    def: &ComputeDef,
    spec: &TargetSpec,
    predictor: &ScorePredictor,
    opts: &TuneOptions,
) -> Result<TuneResult, CoreError> {
    let session = SimSession::builder()
        .accurate(&spec.hierarchy)
        .n_parallel(opts.n_parallel)
        .memo_cache_opt(opts.memo_cache.clone())
        .build()?;
    tune_with_predictor_on(def, spec, predictor, opts, &session)
}

/// [`tune_with_predictor`] on a caller-provided session instead of a
/// freshly built one — the entry point [`crate::SimService`] tenants
/// use, so N concurrent tuning loops share one worker pool and one memo
/// cache. `opts.n_parallel` and `opts.memo_cache` are ignored in favor
/// of the session's own pool and cache.
///
/// # Errors
///
/// Propagates pipeline failures; individual failed candidates are
/// penalized, not fatal.
pub fn tune_with_predictor_on(
    def: &ComputeDef,
    spec: &TargetSpec,
    predictor: &ScorePredictor,
    opts: &TuneOptions,
    session: &SimSession,
) -> Result<TuneResult, CoreError> {
    if !predictor.is_trained() {
        return Err(CoreError::Pipeline("predictor is not trained".into()));
    }
    let generator = SketchGenerator::new(def, spec.isa.clone());
    let mut strategy = opts.strategy.build_sketch(generator.clone(), opts.seed);
    let (history, sim_runs, timings) =
        explore(&generator, def, predictor, strategy.as_mut(), opts, session)?;
    finish(history, strategy.as_ref(), sim_runs, timings)
}

/// A proposed-and-built batch whose simulation is in flight on the
/// session's worker pool.
struct StagedBatch<P> {
    kept: Vec<P>,
    failed: Vec<P>,
    ticket: BatchTicket,
}

impl<P> StagedBatch<P> {
    fn trials(&self) -> usize {
        self.kept.len() + self.failed.len()
    }
}

/// The shared exploration loop: the strategy proposes batch-wise, the
/// loop builds, runs on `session`'s backend, scores with `predictor`,
/// and feeds the evaluations back. Returns the full evaluation history,
/// the number of simulations submitted (successful builds handed to the
/// session, whether memoized, failed or completed) and the per-stage
/// producer timings.
///
/// The loop is *pipelined*: batches are submitted asynchronously
/// ([`SimSession::submit`]), and when the strategy's proposals cannot
/// depend on scores ([`SearchStrategy::pipeline_safe`]) the next batch
/// is proposed and built **while the previous one simulates** on the
/// persistent pool — the Pac-Sim overlap trick, applied to lowering.
/// Guided strategies keep strict propose → simulate → observe
/// sequencing, so the visit order is bit-identical to the sequential
/// loop for every strategy, at every `n_parallel`.
fn explore(
    generator: &SketchGenerator,
    def: &ComputeDef,
    predictor: &ScorePredictor,
    strategy: &mut dyn SearchStrategy<SketchParams>,
    opts: &TuneOptions,
    session: &SimSession,
) -> Result<(Vec<TuneRecord>, usize, StageTimings), CoreError> {
    let builder = KernelBuilder::new(def.clone(), generator.target().clone());

    let mut history: Vec<TuneRecord> = Vec::new();
    let mut evaluations: Vec<Evaluation<SketchParams>> = Vec::new();
    let mut sim_runs = 0usize;
    let mut timings = StageTimings::default();
    let pipelined = strategy.pipeline_safe();
    // One normalizer for the whole session: the window means evolve over
    // the full candidate stream, not per batch.
    let mut normalizer = crate::features::WindowNormalizer::new(opts.window);
    let mut inflight: Option<StagedBatch<SketchParams>> = None;
    let mut exhausted = false;
    loop {
        // Stage the next batch. With a pipeline-safe strategy this
        // happens while `inflight` is still simulating; otherwise only
        // when nothing is in flight (scores must reach `observe` first).
        let committed = history.len() + inflight.as_ref().map_or(0, StagedBatch::trials);
        let staged = if !exhausted && committed < opts.n_trials && (pipelined || inflight.is_none())
        {
            let want = opts.batch_size.min(opts.n_trials - committed);
            let t0 = Instant::now();
            let batch = strategy.propose(&evaluations, want);
            timings.propose_nanos += t0.elapsed().as_nanos() as u64;
            if batch.is_empty() {
                exhausted = true; // search space exhausted
                None
            } else {
                // Build; drop failures with a penalty score.
                let t0 = Instant::now();
                let mut exes = Vec::new();
                let mut kept: Vec<SketchParams> = Vec::new();
                let mut failed: Vec<SketchParams> = Vec::new();
                for p in batch {
                    let schedule = generator.schedule(&p);
                    match builder.build(&schedule, &format!("{}t{committed}", def.name)) {
                        Ok(e) => {
                            exes.push(e);
                            kept.push(p);
                        }
                        Err(_) => failed.push(p),
                    }
                }
                timings.build_nanos += t0.elapsed().as_nanos() as u64;
                sim_runs += exes.len();
                let ticket = session.submit(exes);
                Some(StagedBatch {
                    kept,
                    failed,
                    ticket,
                })
            }
        } else {
            None
        };

        let finished = inflight.take();
        inflight = staged;
        let Some(done) = finished else {
            if inflight.is_none() {
                break;
            }
            continue;
        };

        // Drain, score and observe the finished batch in submission
        // order — parallelism and pipelining never reorder the stream
        // the window normalizer and the strategy see.
        let t0 = Instant::now();
        let stats = done.ticket.wait();
        timings.sim_nanos += t0.elapsed().as_nanos() as u64;
        let t0 = Instant::now();
        let mut batch_evals: Vec<Evaluation<SketchParams>> = Vec::new();
        for (p, s) in done.kept.into_iter().zip(stats) {
            let score = match s {
                Ok(report) => predictor.score_streaming(&report.stats, &mut normalizer)?,
                Err(_) => f64::INFINITY,
            };
            batch_evals.push(Evaluation { point: p, score });
        }
        for p in done.failed {
            batch_evals.push(Evaluation {
                point: p,
                score: f64::INFINITY,
            });
        }
        strategy.observe(&batch_evals);
        for e in &batch_evals {
            history.push(TuneRecord {
                schedule: generator.schedule(&e.point),
                description: format!("{:?}", e.point),
                score: e.score,
            });
        }
        evaluations.extend(batch_evals);
        timings.score_nanos += t0.elapsed().as_nanos() as u64;
    }
    Ok((history, sim_runs, timings))
}

/// Options of the fidelity-escalation mode: how many finalists graduate
/// from the cheap exploration tier to the accurate tier.
#[derive(Debug, Clone)]
pub struct EscalationOptions {
    /// Finalists re-simulated on the accurate backend (the paper-style
    /// trade: exploration breadth at low fidelity, final ranking at full
    /// fidelity).
    pub top_k: usize,
    /// When set, exploration uses a [`SampledBackend`] at this fraction
    /// instead of the default [`FastCountBackend`] — a middle tier for
    /// workloads whose ranking is cache-sensitive.
    pub sample_fraction: Option<f64>,
}

impl Default for EscalationOptions {
    fn default() -> Self {
        EscalationOptions {
            top_k: 8,
            sample_fraction: None,
        }
    }
}

/// Result of a fidelity-escalated tuning session.
#[derive(Debug, Clone)]
pub struct EscalatedTuneResult {
    /// Full history: exploration records keep their cheap-tier scores;
    /// finalist records carry accurate-tier scores. `result.best_index`
    /// always points at a finalist.
    pub result: TuneResult,
    /// Name of the backend used for exploration rounds.
    pub explore_backend: String,
    /// Name of the backend used for the finalists.
    pub final_backend: String,
    /// Cheap-tier simulations executed.
    pub explore_runs: usize,
    /// Accurate simulations executed (≤ `top_k`, against `n_trials` for
    /// an accurate-only session).
    pub accurate_runs: usize,
}

/// Fidelity-escalation tuning (the trade the paper's Fig. 1 spans): a
/// cheap backend ([`FastCountBackend`] by default, [`SampledBackend`]
/// with [`EscalationOptions::sample_fraction`]) scores every exploration
/// candidate, then only the `top_k` finalists are re-simulated on the
/// instruction-accurate backend and the best finalist wins. The host
/// pays for `top_k` accurate simulations instead of `n_trials`.
///
/// # Example
///
/// ```no_run
/// use simtune_core::{
///     tune_with_fidelity_escalation, EscalationOptions, ScorePredictor, StrategySpec,
///     TuneOptions,
/// };
/// use simtune_hw::TargetSpec;
/// use simtune_predict::PredictorKind;
/// use simtune_tensor::matmul;
///
/// # fn main() -> Result<(), simtune_core::CoreError> {
/// let def = matmul(16, 16, 16);
/// let spec = TargetSpec::riscv_u74();
/// # let trained_predictor = ScorePredictor::new(PredictorKind::LinReg, "riscv", "matmul", 1);
/// let opts = TuneOptions {
///     n_trials: 64,
///     strategy: StrategySpec::Evolutionary,
///     ..TuneOptions::default()
/// };
/// let esc = EscalationOptions { top_k: 6, ..EscalationOptions::default() };
/// let out = tune_with_fidelity_escalation(&def, &spec, &trained_predictor, &opts, &esc)?;
/// assert!(out.accurate_runs <= 6);
/// println!("best candidate: {}", out.result.best().description);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates pipeline failures; returns [`CoreError::Pipeline`] when
/// the predictor is untrained, `top_k` is zero, or no finalist survives.
pub fn tune_with_fidelity_escalation(
    def: &ComputeDef,
    spec: &TargetSpec,
    predictor: &ScorePredictor,
    opts: &TuneOptions,
    esc: &EscalationOptions,
) -> Result<EscalatedTuneResult, CoreError> {
    if !predictor.is_trained() {
        return Err(CoreError::Pipeline("predictor is not trained".into()));
    }
    if esc.top_k == 0 {
        return Err(CoreError::Pipeline(
            "fidelity escalation needs top_k >= 1".into(),
        ));
    }
    let explore_backend: Arc<dyn SimBackend> = match esc.sample_fraction {
        Some(fraction) => Arc::new(SampledBackend::new(spec.hierarchy.clone(), fraction)?),
        None => Arc::new(FastCountBackend::matching(&spec.hierarchy)),
    };
    let explore_name = explore_backend.name().to_string();
    let session = SimSession::builder()
        .backend(explore_backend)
        .n_parallel(opts.n_parallel)
        .memo_cache_opt(opts.memo_cache.clone())
        .build()?;
    let generator = SketchGenerator::new(def, spec.isa.clone());
    let mut strategy = opts.strategy.build_sketch(generator.clone(), opts.seed);
    let (mut history, explore_runs, mut timings) = explore(
        &generator,
        def,
        predictor,
        strategy.as_mut(),
        opts,
        &session,
    )?;

    // Graduate the top-k cheap-tier candidates to the accurate tier.
    let mut order: Vec<usize> = (0..history.len())
        .filter(|&i| history[i].score.is_finite())
        .collect();
    order.sort_by(|&a, &b| {
        history[a]
            .score
            .partial_cmp(&history[b].score)
            .expect("finite scores")
    });
    order.truncate(esc.top_k);

    let builder = KernelBuilder::new(def.clone(), spec.isa.clone());
    let t0 = Instant::now();
    let mut finalist_idx = Vec::with_capacity(order.len());
    let mut finalist_exes = Vec::with_capacity(order.len());
    for &i in &order {
        // Rebuilding is deterministic (fixed data seed), so the finalist
        // executes byte-for-byte what the exploration round saw.
        if let Ok(exe) = builder.build(&history[i].schedule, &format!("{}f{i}", def.name)) {
            finalist_idx.push(i);
            finalist_exes.push(exe);
        }
    }
    timings.build_nanos += t0.elapsed().as_nanos() as u64;
    let accurate = SimSession::builder()
        .accurate(&spec.hierarchy)
        .n_parallel(opts.n_parallel)
        .memo_cache_opt(opts.memo_cache.clone())
        .build()?;
    let final_name = accurate.backend_name().to_string();
    let accurate_runs = finalist_exes.len();
    let t0 = Instant::now();
    let reports = accurate.run_stats(&finalist_exes);
    timings.sim_nanos += t0.elapsed().as_nanos() as u64;

    let mut survivors = Vec::new();
    let mut survivor_stats = Vec::new();
    for (i, r) in finalist_idx.iter().zip(reports) {
        if let Ok(stats) = r {
            survivors.push(*i);
            survivor_stats.push(stats);
        }
    }
    if survivors.is_empty() {
        return Err(CoreError::Pipeline(
            "no finalist survived accurate re-simulation".into(),
        ));
    }
    // Batch scoring keeps the finalists' normalization consistent with
    // one another — the ranking that decides the winner.
    let scores = predictor.score_group(&survivor_stats)?;
    let mut best = (survivors[0], f64::INFINITY);
    for (&i, &s) in survivors.iter().zip(&scores) {
        history[i].score = s;
        if s < best.1 {
            best = (i, s);
        }
    }
    Ok(EscalatedTuneResult {
        result: TuneResult {
            history,
            best_index: best.0,
            strategy: strategy.name().to_string(),
            convergence: strategy.convergence(),
            simulations: explore_runs + accurate_runs,
            timings,
        },
        explore_backend: explore_name,
        final_backend: final_name,
        explore_runs,
        accurate_runs,
    })
}

/// Baseline flow: candidates are benchmarked on the (emulated) target
/// hardware; the score is the measured `t_ref` in seconds.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn tune_on_hardware(
    def: &ComputeDef,
    spec: &TargetSpec,
    opts: &TuneOptions,
) -> Result<TuneResult, CoreError> {
    let generator = SketchGenerator::new(def, spec.isa.clone());
    let builder = KernelBuilder::new(def.clone(), spec.isa.clone());
    let hw = HardwareRunner {
        noise_seed: opts.seed ^ 0x7A11,
        ..HardwareRunner::new(spec.clone())
    };
    let mut strategy = opts.strategy.build_sketch(generator.clone(), opts.seed);
    let mut history: Vec<TuneRecord> = Vec::new();
    let mut evaluations: Vec<Evaluation<SketchParams>> = Vec::new();
    let mut hw_runs = 0usize;
    let mut timings = StageTimings::default();
    // Hardware measurement is inherently sequential (Section IV: the
    // board benchmarks one binary at a time), so this loop does not
    // pipeline; the timings still expose where the wall time goes.
    while history.len() < opts.n_trials {
        let want = opts.batch_size.min(opts.n_trials - history.len());
        let t0 = Instant::now();
        let batch = strategy.propose(&evaluations, want);
        timings.propose_nanos += t0.elapsed().as_nanos() as u64;
        if batch.is_empty() {
            break;
        }
        let mut batch_evals: Vec<Evaluation<SketchParams>> = Vec::new();
        for p in batch {
            let schedule = generator.schedule(&p);
            let t0 = Instant::now();
            let built = builder.build(&schedule, &format!("{}h{}", def.name, history.len()));
            timings.build_nanos += t0.elapsed().as_nanos() as u64;
            let score = built
                .and_then(|exe| {
                    hw_runs += 1;
                    let t0 = Instant::now();
                    let measured = hw.run_one(&exe, history.len() + batch_evals.len());
                    timings.sim_nanos += t0.elapsed().as_nanos() as u64;
                    measured
                })
                .map(|m| m.t_ref)
                .unwrap_or(f64::INFINITY);
            batch_evals.push(Evaluation { point: p, score });
        }
        let t0 = Instant::now();
        strategy.observe(&batch_evals);
        for e in &batch_evals {
            history.push(TuneRecord {
                description: format!("{:?}", e.point),
                schedule: generator.schedule(&e.point),
                score: e.score,
            });
        }
        evaluations.extend(batch_evals);
        timings.score_nanos += t0.elapsed().as_nanos() as u64;
    }
    finish(history, strategy.as_ref(), hw_runs, timings)
}

fn finish(
    history: Vec<TuneRecord>,
    strategy: &dyn SearchStrategy<SketchParams>,
    simulations: usize,
    timings: StageTimings,
) -> Result<TuneResult, CoreError> {
    if history.is_empty() {
        return Err(CoreError::Pipeline("tuning produced no candidates".into()));
    }
    let best_index = history
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.score.partial_cmp(&b.1.score).expect("finite or inf"))
        .map(|(i, _)| i)
        .expect("non-empty history");
    Ok(TuneResult {
        history,
        best_index,
        strategy: strategy.name().to_string(),
        convergence: strategy.convergence(),
        simulations,
        timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::{collect_group_data, CollectOptions};
    use simtune_predict::PredictorKind;
    use simtune_tensor::matmul;

    fn setup() -> (ComputeDef, TargetSpec) {
        (matmul(8, 8, 8), TargetSpec::riscv_u74())
    }

    fn trained_predictor(def: &ComputeDef, spec: &TargetSpec) -> ScorePredictor {
        let data = collect_group_data(
            def,
            spec,
            0,
            &CollectOptions {
                n_impls: 16,
                n_parallel: 4,
                seed: 5,
                max_attempts_factor: 40,
                ..CollectOptions::default()
            },
        )
        .unwrap();
        let mut predictor = ScorePredictor::new(PredictorKind::LinReg, "riscv", "matmul", 1);
        predictor.train(std::slice::from_ref(&data)).unwrap();
        predictor
    }

    #[test]
    fn hardware_tuning_finds_a_good_schedule() {
        let (def, spec) = setup();
        let result = tune_on_hardware(
            &def,
            &spec,
            &TuneOptions {
                n_trials: 12,
                batch_size: 4,
                seed: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.history.len(), 12);
        assert!(result.best().score.is_finite());
        assert_eq!(result.strategy, "random");
        assert_eq!(result.simulations, 12, "every build measured once");
        // The best is at most the median candidate.
        let mut scores: Vec<f64> = result.history.iter().map(|r| r.score).collect();
        scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(result.best().score <= scores[scores.len() / 2]);
    }

    #[test]
    fn predictor_tuning_runs_without_hardware() {
        let (def, spec) = setup();
        let predictor = trained_predictor(&def, &spec);
        let result = tune_with_predictor(
            &def,
            &spec,
            &predictor,
            &TuneOptions {
                n_trials: 10,
                batch_size: 5,
                seed: 9,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.history.len(), 10);
        assert!(result.best().score.is_finite());
        assert_eq!(result.convergence.observed, 10);
        assert!(result.convergence.best_score <= result.best().score);
    }

    #[test]
    fn every_builtin_strategy_drives_the_predictor_loop() {
        let (def, spec) = setup();
        let predictor = trained_predictor(&def, &spec);
        for spec_kind in StrategySpec::all() {
            let label = spec_kind.label();
            let result = tune_with_predictor(
                &def,
                &spec,
                &predictor,
                &TuneOptions {
                    n_trials: 8,
                    batch_size: 4,
                    n_parallel: 2,
                    seed: 9,
                    strategy: spec_kind,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(result.strategy, label);
            assert_eq!(result.history.len(), 8, "{label} produced a short history");
            assert!(result.best().score.is_finite(), "{label} found no best");
            assert_eq!(result.convergence.observed, 8);
        }
    }

    #[test]
    fn custom_boxed_strategy_plugs_into_the_loop() {
        let (def, spec) = setup();
        let predictor = trained_predictor(&def, &spec);
        let result = tune_with_predictor(
            &def,
            &spec,
            &predictor,
            &TuneOptions {
                n_trials: 6,
                batch_size: 3,
                seed: 2,
                strategy: StrategySpec::Custom(Arc::new(|space, seed| {
                    Box::new(crate::search::HillClimb::new(space, seed))
                })),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.strategy, "hill_climb");
        assert_eq!(result.history.len(), 6);
    }

    #[test]
    fn untrained_predictor_is_rejected() {
        let (def, spec) = setup();
        let predictor = ScorePredictor::new(PredictorKind::LinReg, "riscv", "matmul", 1);
        let err = tune_with_predictor(&def, &spec, &predictor, &TuneOptions::default());
        assert!(matches!(err, Err(CoreError::Pipeline(_))));
    }
}
