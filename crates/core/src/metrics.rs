//! Evaluation metrics of the paper (Section IV-B), the parallel-
//! simulation speedup bound (Equation 4), and operational counters of
//! the simulation memo cache, the persistent worker pool and the
//! pipelined tuning loop.
//!
//! The prediction metrics operate on a set of implementations of one
//! group with measured reference run times `t_ref` and predicted scores;
//! lower is better for every metric.

use simtune_linalg::stats::argsort;

/// Hit/miss counters of a [`crate::SimCache`], the cross-loop simulation
/// memoization layer: every hit is one backend execution the session
/// skipped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoCacheStats {
    /// Lookups answered from the cache (backend executions avoided).
    pub hits: u64,
    /// Lookups that fell through to a backend execution.
    pub misses: u64,
}

impl MemoCacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (0 when none happened).
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// Counters of a [`crate::SimCache`]'s disk-persistence path, surfaced
/// through [`crate::SimCache::snapshot_stats`]. A rejected snapshot is
/// not an error: the cache degrades to a cold start and the rejection is
/// recorded here (and logged), so a corrupt file on disk can never keep
/// a service from starting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Entries restored from snapshots over the cache's lifetime.
    pub loaded_entries: u64,
    /// Snapshots refused (corrupt, truncated or version-mismatched),
    /// each degrading to a cold start instead of failing the caller.
    pub rejected_snapshots: u64,
    /// Snapshots successfully written to disk.
    pub saved_snapshots: u64,
}

/// Per-tenant view of a multi-tenant [`crate::SimService`]: one tenant's
/// share of the shared memo cache and worker pool, surfaced through
/// [`crate::TenantSession::stats`] and [`crate::SimService::tenant_stats`].
///
/// `memo` counts only this tenant's submissions (the shared cache's own
/// [`MemoCacheStats`] aggregates all tenants), and `pool.trials` /
/// `pool.busy_nanos` count only worker time spent on this tenant's
/// batches. `pool.workers` and `pool.wall_nanos` describe the shared
/// pool, so `pool.utilization()` reads as "fraction of the whole pool's
/// capacity this tenant consumed".
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantStats {
    /// The tenant's registered name.
    pub tenant: String,
    /// This tenant's memo hits/misses on the shared cache.
    pub memo: MemoCacheStats,
    /// This tenant's share of the shared pool's execution counters.
    pub pool: WorkerPoolStats,
    /// Accumulated online-predictor counters over all of this tenant's
    /// escalated tunes (all-zero when the tenant never used the
    /// predicted tier).
    pub predictor: PredictorStats,
}

/// Counters of the online prediction subsystem
/// ([`crate::PredictedBackend`] + the uncertainty escalation policy),
/// surfaced on [`crate::TuneResult::predictor`] and aggregated per
/// tenant on [`TenantStats::predictor`].
///
/// `avoided_simulations` is the headline number: candidates whose score
/// was answered by the model alone, i.e. accurate simulations the sweep
/// never had to run. The error fields compare the model's prediction
/// with the accurate score *on escalated candidates only* (those are the
/// only ones where both numbers exist).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PredictorStats {
    /// Times the model was (re)fitted during the sweep.
    pub train_events: u64,
    /// (feature vector, accurate score) pairs fed to the model.
    pub observations: u64,
    /// Per-candidate uncertainty queries answered by the model.
    pub queries: u64,
    /// Candidates escalated to the accurate tier (including the final
    /// winner's verification runs).
    pub escalations: u64,
    /// Candidates whose score stayed model-predicted — accurate
    /// simulations the policy avoided.
    pub avoided_simulations: u64,
    /// Mean |predicted − accurate| over escalated candidates with a
    /// model prediction (0 when none).
    pub mean_abs_error: f64,
    /// Mean absolute rank displacement between the predicted and the
    /// accurate ordering of those candidates, normalized to `[0, 1]`
    /// (0 when fewer than two pairs exist).
    pub mean_abs_rank_error: f64,
}

impl PredictorStats {
    /// Folds another run's counters into this accumulator; the error
    /// means are weighted by each side's escalation count.
    pub fn merge(&mut self, other: &PredictorStats) {
        let (a, b) = (self.escalations as f64, other.escalations as f64);
        if a + b > 0.0 {
            self.mean_abs_error = (self.mean_abs_error * a + other.mean_abs_error * b) / (a + b);
            self.mean_abs_rank_error =
                (self.mean_abs_rank_error * a + other.mean_abs_rank_error * b) / (a + b);
        }
        self.train_events += other.train_events;
        self.observations += other.observations;
        self.queries += other.queries;
        self.escalations += other.escalations;
        self.avoided_simulations += other.avoided_simulations;
    }
}

/// Lifetime execution counters of a [`crate::SimSession`]'s persistent
/// worker pool, surfaced through [`crate::SimSession::pool_stats`].
///
/// `busy_nanos` accumulates wall time workers spent *executing* trials;
/// `wall_nanos` is the pool's lifetime. Their ratio (normalized by the
/// worker count) is the pool's utilization — low utilization on a busy
/// sweep means the producer (propose/build/score) is the bottleneck,
/// not simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerPoolStats {
    /// Worker threads the pool spawned (the session's `n_parallel`).
    pub workers: usize,
    /// Batches that reached the execution queue (all-hit batches are
    /// resolved at submission and never enqueue).
    pub batches: u64,
    /// Trials executed by workers (memo hits and followers excluded).
    pub trials: u64,
    /// Cumulative wall time workers spent executing trials.
    pub busy_nanos: u64,
    /// Wall time since the pool was spawned.
    pub wall_nanos: u64,
}

impl WorkerPoolStats {
    /// Fraction of the pool's capacity spent executing trials, in
    /// `[0, 1]` (0 when nothing ran yet).
    pub fn utilization(&self) -> f64 {
        let capacity = self.wall_nanos.saturating_mul(self.workers as u64);
        if capacity == 0 {
            0.0
        } else {
            (self.busy_nanos as f64 / capacity as f64).min(1.0)
        }
    }
}

/// Producer-side wall time of one tuning run, split by pipeline stage
/// and surfaced on [`crate::TuneResult::timings`].
///
/// With a pipeline-safe strategy the loop lowers batch *k+1* while
/// batch *k* simulates, so `sim_nanos` — the time the producer actually
/// *blocked* on simulation tickets — shrinks as overlap improves; the
/// simulation cost hidden behind the build stage never appears here.
/// Compare with [`WorkerPoolStats::busy_nanos`] to see how much
/// simulation ran in the shadow of other stages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Time spent in [`crate::SearchStrategy::propose`].
    pub propose_nanos: u64,
    /// Time spent lowering/building candidates into executables.
    pub build_nanos: u64,
    /// Time the producer blocked waiting on simulation results.
    pub sim_nanos: u64,
    /// Time spent scoring results and feeding strategies back.
    pub score_nanos: u64,
}

impl StageTimings {
    /// Sum over all stages — the producer-side critical path.
    pub fn total_nanos(&self) -> u64 {
        self.propose_nanos + self.build_nanos + self.sim_nanos + self.score_nanos
    }
}

/// Convergence counters of one [`crate::SearchStrategy`] run, surfaced
/// on [`crate::TuneResult::convergence`].
///
/// The counters describe how the strategy spent its budget: how many
/// candidates it handed out, how often an observation improved the best
/// score, and how early the final best was found. A strategy that
/// reaches the same `best_score` with a smaller `trials_to_best`
/// converged faster at equal fidelity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceStats {
    /// Candidates the strategy proposed.
    pub proposed: u64,
    /// Evaluations fed back through `observe`.
    pub observed: u64,
    /// Observations that improved the best score so far.
    pub improvements: u64,
    /// Best (lowest) score observed; `INFINITY` before any observation.
    pub best_score: f64,
    /// 1-based observation index at which the current best arrived
    /// (0 before any observation).
    pub trials_to_best: u64,
    /// Random restarts taken (hill climbing; 0 for other strategies).
    pub restarts: u64,
}

impl Default for ConvergenceStats {
    fn default() -> Self {
        ConvergenceStats {
            proposed: 0,
            observed: 0,
            improvements: 0,
            best_score: f64::INFINITY,
            trials_to_best: 0,
            restarts: 0,
        }
    }
}

/// The four per-group prediction metrics of Tables III–V.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionMetrics {
    /// Eq. 5: relative error (%) between the truly fastest measured time
    /// and the measured time of the top-ranked prediction.
    pub e_top1: f64,
    /// Eq. 7 over the faster half of the prediction-ordered sequence (%).
    pub q_low: f64,
    /// Eq. 7 over the slower half (%).
    pub q_high: f64,
    /// Eq. 6: relative rank (%) the predictor assigned to the truly
    /// fastest implementation.
    pub r_top1: f64,
}

/// Computes all Table III–V metrics from measured times and predicted
/// scores (parallel arrays over the same implementations).
///
/// # Panics
///
/// Panics if the slices are empty or differ in length.
pub fn prediction_metrics(t_ref: &[f64], scores: &[f64]) -> PredictionMetrics {
    assert_eq!(t_ref.len(), scores.len(), "metrics: length mismatch");
    assert!(!t_ref.is_empty(), "metrics of empty set");
    let order = argsort(scores); // predictor's ranking, best first
    let ordered_times: Vec<f64> = order.iter().map(|&i| t_ref[i]).collect();
    PredictionMetrics {
        e_top1: e_top1(t_ref, &ordered_times),
        q_low: quality_score(&ordered_times[..ordered_times.len() / 2 + 1]),
        q_high: quality_score(&ordered_times[ordered_times.len() / 2..]),
        r_top1: r_top1(t_ref, &order),
    }
}

/// Eq. 5: `E_top1 = |1 − t_ref[0] / t_pred[0]| · 100 %` where `t_ref[0]`
/// is the fastest measured time and `t_pred[0]` the measured time of the
/// implementation the predictor ranked first.
///
/// # Panics
///
/// Panics if either slice is empty.
pub fn e_top1(t_ref: &[f64], prediction_ordered_times: &[f64]) -> f64 {
    let best_measured = t_ref.iter().cloned().fold(f64::INFINITY, f64::min);
    let top_predicted = prediction_ordered_times[0];
    (1.0 - best_measured / top_predicted).abs() * 100.0
}

/// Eq. 6: `R_top1 = 100 % / |t_ref| · (argmin_x(t_pred[x] == t_ref[0]) + 1)`
/// — the 1-based position of the truly fastest implementation within the
/// predictor's ranking, as a percentage of the set size.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the indices of `t_ref`.
pub fn r_top1(t_ref: &[f64], order: &[usize]) -> f64 {
    assert_eq!(t_ref.len(), order.len(), "order must cover t_ref");
    let best = simtune_linalg::stats::argmin(t_ref);
    let pos = order
        .iter()
        .position(|&i| i == best)
        .expect("order must contain the best index");
    100.0 * (pos + 1) as f64 / t_ref.len() as f64
}

/// Eq. 7: the sorting-quality score
/// `Q = 100 % / |t| · Σ_i (t[i] − min(t[i], t[i+1])) / t[i]`
/// over a prediction-ordered sequence of measured times. Zero for a
/// perfectly monotone ordering; each inversion contributes its relative
/// magnitude.
///
/// # Panics
///
/// Panics if `prediction_ordered_times` is empty.
pub fn quality_score(prediction_ordered_times: &[f64]) -> f64 {
    let t = prediction_ordered_times;
    assert!(!t.is_empty(), "quality score of empty sequence");
    let mut sum = 0.0;
    for i in 0..t.len() - 1 {
        sum += (t[i] - t[i].min(t[i + 1])) / t[i];
    }
    100.0 * sum / t.len() as f64
}

/// Eq. 4: the number of parallel simulators needed to match native
/// benchmarking throughput,
/// `K = ⌈t_simulator / ((t_cooldown + t_ref) · N_exe)⌉`.
///
/// # Panics
///
/// Panics on non-positive native benchmarking time.
pub fn parallel_speedup_k(t_simulator: f64, t_ref: f64, t_cooldown: f64, n_exe: usize) -> u64 {
    let native = (t_cooldown + t_ref) * n_exe as f64;
    assert!(native > 0.0, "native benchmark time must be positive");
    (t_simulator / native).ceil().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_scores_zero_error() {
        let t = vec![1.0, 2.0, 3.0, 4.0];
        let scores = vec![0.1, 0.2, 0.3, 0.4]; // same order
        let m = prediction_metrics(&t, &scores);
        assert_eq!(m.e_top1, 0.0);
        assert_eq!(m.q_low, 0.0);
        assert_eq!(m.q_high, 0.0);
        assert_eq!(m.r_top1, 25.0, "best ranked first out of 4 = 25 %");
    }

    #[test]
    fn e_top1_measures_relative_miss() {
        // Predictor ranks the 1.2 s sample first; the true best is 1.0 s.
        let t = vec![1.0, 1.2, 2.0];
        let scores = vec![0.5, 0.1, 0.9];
        let m = prediction_metrics(&t, &scores);
        assert!((m.e_top1 - (1.0 - 1.0 / 1.2f64).abs() * 100.0).abs() < 1e-9);
        // True best sits at position 2 of 3.
        assert!((m.r_top1 - 200.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn quality_score_counts_inversions_proportionally() {
        // Ordered: zero.
        assert_eq!(quality_score(&[1.0, 2.0, 3.0]), 0.0);
        // One inversion of relative size 0.5 among 2 entries.
        let q = quality_score(&[2.0, 1.0]);
        assert!((q - 100.0 * 0.5 / 2.0).abs() < 1e-9);
        // Reversed order scores worse than a single swap.
        let rev = quality_score(&[4.0, 3.0, 2.0, 1.0]);
        let swap = quality_score(&[1.0, 2.0, 4.0, 3.0]);
        assert!(rev > swap);
    }

    #[test]
    fn q_low_high_split_is_half_and_half() {
        // First half perfectly ordered, second half reversed.
        let t = vec![1.0, 2.0, 3.0, 4.0, 8.0, 7.0, 6.0, 5.0];
        let scores: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let m = prediction_metrics(&t, &scores);
        assert_eq!(m.q_low, 0.0);
        assert!(m.q_high > 0.0);
    }

    #[test]
    fn r_top1_bounds() {
        let t = vec![5.0, 1.0, 3.0];
        // Worst case: true best ranked last.
        let m = prediction_metrics(&t, &[0.0, 2.0, 1.0]);
        assert_eq!(m.r_top1, 100.0);
        // Best case: ranked first.
        let m = prediction_metrics(&t, &[2.0, 0.0, 1.0]);
        assert!((m.r_top1 - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn equation_4_reproduces_paper_arithmetic() {
        // t_sim = 97 * (1 + t_ref) * 15 exactly -> K = 97.
        let t_ref = 0.02;
        let native = (1.0 + t_ref) * 15.0;
        assert_eq!(parallel_speedup_k(97.0 * native, t_ref, 1.0, 15), 97);
        assert_eq!(parallel_speedup_k(96.5 * native, t_ref, 1.0, 15), 97);
        assert_eq!(parallel_speedup_k(0.0001, t_ref, 1.0, 15), 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_panic() {
        prediction_metrics(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn worker_pool_utilization_bounds() {
        let idle = WorkerPoolStats::default();
        assert_eq!(idle.utilization(), 0.0);
        let half = WorkerPoolStats {
            workers: 2,
            batches: 3,
            trials: 12,
            busy_nanos: 1_000,
            wall_nanos: 1_000,
        };
        assert!((half.utilization() - 0.5).abs() < 1e-12);
        // Measurement jitter can push busy past capacity; clamp at 1.
        let over = WorkerPoolStats {
            workers: 1,
            busy_nanos: 2_000,
            wall_nanos: 1_000,
            ..half
        };
        assert_eq!(over.utilization(), 1.0);
    }

    #[test]
    fn stage_timings_total() {
        let t = StageTimings {
            propose_nanos: 1,
            build_nanos: 2,
            sim_nanos: 3,
            score_nanos: 4,
        };
        assert_eq!(t.total_nanos(), 10);
        assert_eq!(StageTimings::default().total_nanos(), 0);
    }

    #[test]
    fn predictor_stats_merge_weights_errors_by_escalations() {
        let mut a = PredictorStats {
            train_events: 2,
            observations: 10,
            queries: 20,
            escalations: 4,
            avoided_simulations: 16,
            mean_abs_error: 1.0,
            mean_abs_rank_error: 0.2,
        };
        let b = PredictorStats {
            train_events: 1,
            observations: 6,
            queries: 12,
            escalations: 12,
            avoided_simulations: 0,
            mean_abs_error: 2.0,
            mean_abs_rank_error: 0.6,
        };
        a.merge(&b);
        assert_eq!(a.train_events, 3);
        assert_eq!(a.observations, 16);
        assert_eq!(a.queries, 32);
        assert_eq!(a.escalations, 16);
        assert_eq!(a.avoided_simulations, 16);
        assert!((a.mean_abs_error - (1.0 * 4.0 + 2.0 * 12.0) / 16.0).abs() < 1e-12);
        assert!((a.mean_abs_rank_error - (0.2 * 4.0 + 0.6 * 12.0) / 16.0).abs() < 1e-12);
        // Merging into an empty accumulator copies the other side.
        let mut empty = PredictorStats::default();
        empty.merge(&a);
        assert_eq!(empty, a);
    }

    #[test]
    fn memo_cache_stats_ratios() {
        let empty = MemoCacheStats::default();
        assert_eq!(empty.lookups(), 0);
        assert_eq!(empty.hit_ratio(), 0.0);
        let s = MemoCacheStats { hits: 3, misses: 1 };
        assert_eq!(s.lookups(), 4);
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
    }
}
