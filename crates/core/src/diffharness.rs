//! Differential torture harness: one program, every engine × backend ×
//! parallelism combination, full observable-state diffing.
//!
//! The repo's standing correctness claim is two-fold: every replay
//! engine ([`EngineKind`]) is bit-identical to the reference
//! interpreter, and every simulating backend tier relates to
//! [`AccurateBackend`] by a *stated contract* — [`FastCountBackend`]
//! reproduces instruction and fetch/access totals exactly,
//! [`crate::SampledBackend`] equals an accurate run over the simulated
//! prefix and linearly extrapolates the rest (flagging
//! [`SimReport::extrapolated`]). This module checks all of it against a
//! single generated program in one call, producing structured
//! [`Divergence`] records instead of panics, so the fuzzer can journal,
//! shrink and replay failures.
//!
//! One [`DiffHarness::run_case`] invocation covers, for a journaled
//! `(config, seed)` identity (see [`simtune_isa::TortureConfig`]):
//!
//! 1. **Engine sweep, full state** — the program runs on every
//!    [`EngineKind`] from identical cold state; statistics (host wall
//!    time excluded), all 32 integer/float/vector registers (floats by
//!    bit pattern) and the data-window memory image must match the
//!    interpreter exactly. A program that faults must fault identically
//!    everywhere: same [`simtune_isa::SimError`], and post-error
//!    architectural state is deliberately *not* compared (it is
//!    unspecified).
//! 2. **Backend ladder × engine** — [`AccurateBackend`],
//!    [`FastCountBackend`], [`crate::SampledBackend`] (full and
//!    partial fraction) and [`crate::PipelinedBackend`] run on every
//!    engine; each report is checked against the accurate reference
//!    under its tier's contract, with the sampled tier's expectation
//!    *recomputed* from an accurate prefix plus the same linear
//!    extrapolation rather than trusted. The pipelined tier must
//!    reproduce the accurate instruction mix exactly (its prefetcher
//!    legitimately changes cache statistics), report a cycle breakdown
//!    of at least one cycle per retired instruction, and reproduce that
//!    breakdown bit-identically on a re-run.
//! 3. **Session sweep** — persistent [`SimSession`]s at `n_parallel ∈
//!    {1, 2, 4}` on both the per-trial and the SoA-batch
//!    ([`EngineKind::Batch`]) paths run a multi-trial batch (same
//!    program, distinct data images) through the worker pool; every
//!    trial must match a direct single-threaded reference run.
//!
//! New engines opt in by joining [`EngineKind::ALL`]; new backends by
//! being added to the ladder in [`DiffHarness::diff_executable`] with
//! their contract encoded as a comparison. The fuzz driver
//! (`crates/bench`, `torture_fuzz`) loops this harness over the
//! scenario corpus under a time budget; `crates/core/tests/` pins it in
//! the ordinary test suite.

use crate::backend::{extrapolate, AccurateBackend, FastCountBackend, SampledBackend};
use crate::pipelined::PipelinedBackend;
use crate::{
    BackendError, CoreError, SimBackend, SimReport, SimSession, DEFAULT_BTB_ENTRIES,
    DEFAULT_RAS_DEPTH,
};
use simtune_cache::{CacheHierarchy, HierarchyConfig};
use simtune_isa::{
    simulate_counting_decoded_on, simulate_prefix_decoded_on, torture_program_with, AtomicCpu,
    BatchEngine, BatchLane, DecodedEngine, DecodedProgram, EngineKind, ExecEngine, Executable, Fpr,
    Gpr, InterpEngine, Memory, NoopHook, Program, RunLimits, SimError, SimStats, TargetIsa,
    ThreadedEngine, ThreadedProgram, TortureConfig, Vr, DATA_BASE, TORTURE_WINDOW,
};

/// One observed disagreement between a combination under test and its
/// reference, in a form that can be journaled and printed.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Which combination disagreed, e.g. `"engine:threaded"`,
    /// `"backend:fast-count×engine:batch"`,
    /// `"session:accurate×batch×np4[trial 2]"`.
    pub combo: String,
    /// Which observable field, e.g. `"stats.inst_mix"`, `"gpr"`,
    /// `"memory"`, `"error"`, `"extrapolated"`.
    pub field: String,
    /// Reference value (Debug-formatted, truncated for registers/memory
    /// to the first differing element).
    pub expected: String,
    /// Observed value, same formatting.
    pub actual: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} diverged: expected {}, got {}",
            self.combo, self.field, self.expected, self.actual
        )
    }
}

/// Outcome of one torture case: the journaled identity, how many
/// combinations were exercised, and every divergence found (empty =
/// pass).
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Scenario name the config came from ("baseline", "fault-prone", …
    /// or "custom").
    pub scenario: String,
    /// Generator seed — with the scenario/config, the full replay
    /// identity.
    pub seed: u64,
    /// Number of (combination, reference) comparisons performed.
    pub combos: u32,
    /// True when the reference run itself faulted (fault-injection
    /// scenarios): the case then checks error agreement, not state.
    pub faulted: bool,
    /// Every disagreement found; an empty vector is a pass.
    pub divergences: Vec<Divergence>,
}

impl CaseOutcome {
    /// True when no combination disagreed with its reference.
    pub fn passed(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Full observable state of one completed run: everything two engines
/// executing the same program from the same cold state must agree on.
struct ObservedState {
    /// Statistics with `host_nanos` zeroed (wall time legitimately
    /// differs between runs).
    stats: SimStats,
    gprs: Vec<i64>,
    fpr_bits: Vec<u32>,
    vr_bits: Vec<Vec<u32>>,
    mem_bits: Vec<u32>,
}

/// A run either completes with observable state or faults with a
/// [`SimError`]; post-error state is unspecified and never compared.
type Observed = Result<ObservedState, SimError>;

/// The standing differential gate. Construction spawns six persistent
/// worker-pool sessions (accurate backend, engines
/// {[`EngineKind::Decoded`], [`EngineKind::Batch`]} × `n_parallel`
/// {1, 2, 4}), so a fuzz loop pays thread startup once, not per case.
pub struct DiffHarness {
    hierarchy: HierarchyConfig,
    limits: RunLimits,
    /// (engine, n_parallel, session) — the pooled execution paths.
    sessions: Vec<(EngineKind, usize, SimSession)>,
}

/// Fraction of the partial sampled tier under test; `min_insts` is
/// forced to 1 so small torture programs genuinely extrapolate.
const PARTIAL_FRACTION: f64 = 0.5;

impl DiffHarness {
    /// Parallelism degrees every pooled path is exercised at.
    pub const N_PARALLEL: [usize; 3] = [1, 2, 4];

    /// Harness over `hierarchy` with default run limits.
    ///
    /// # Panics
    ///
    /// Panics if a session fails to build — impossible for the bundled
    /// accurate backend.
    pub fn new(hierarchy: HierarchyConfig) -> Self {
        let mut sessions = Vec::new();
        for engine in [EngineKind::Decoded, EngineKind::Batch] {
            for np in Self::N_PARALLEL {
                let session = SimSession::builder()
                    .accurate(&hierarchy)
                    .engine(engine)
                    .n_parallel(np)
                    .build()
                    .expect("accurate session always builds");
                sessions.push((engine, np, session));
            }
        }
        DiffHarness {
            hierarchy,
            limits: RunLimits::default(),
            sessions,
        }
    }

    /// Harness over the tiny test hierarchy — small caches make torture
    /// programs actually evict, which is where fidelity bugs live.
    pub fn tiny() -> Self {
        DiffHarness::new(HierarchyConfig::tiny_for_tests())
    }

    /// The cache geometry every accurate/sampled instance models.
    pub fn hierarchy(&self) -> &HierarchyConfig {
        &self.hierarchy
    }

    /// Builds the canonical executable for a `(config, seed)` identity:
    /// the generated program over a deterministic data image filling the
    /// torture window. `data_seed` varies the image independently of the
    /// program (batch lanes use siblings of the base seed).
    pub fn make_executable(
        scenario: &str,
        config: &TortureConfig,
        seed: u64,
        data_seed: u64,
    ) -> Executable {
        let program = torture_program_with(config, seed);
        let target = TargetIsa::paper_targets()[(seed % 3) as usize].clone();
        Executable::new(format!("torture-{scenario}-{seed:#x}"), program, target)
            .with_segment(DATA_BASE, window_image(data_seed))
    }

    /// Runs the full differential matrix for one `(config, seed)`
    /// identity and reports every disagreement.
    pub fn run_case(&self, scenario: &str, config: &TortureConfig, seed: u64) -> CaseOutcome {
        let exe = Self::make_executable(scenario, config, seed, seed ^ 0x5EED_DA7A);
        let (combos, faulted, divergences) = self.diff_executable(&exe);
        CaseOutcome {
            scenario: scenario.to_string(),
            seed,
            combos,
            faulted,
            divergences,
        }
    }

    /// The matrix itself, over an arbitrary executable (the shrinker
    /// re-enters here with candidate programs). Returns (comparisons
    /// performed, reference faulted, divergences).
    pub fn diff_executable(&self, exe: &Executable) -> (u32, bool, Vec<Divergence>) {
        let mut divs = Vec::new();
        let mut combos = 0u32;
        let decoded = match exe.decode() {
            Ok(d) => d,
            // A program no bundled engine can run cannot diverge; the
            // shrinker relies on this to reject ill-formed candidates.
            Err(_) => return (0, false, divs),
        };

        // 1. Engine sweep, full observable state vs the interpreter.
        let reference = self.observe(EngineKind::Interp, exe, &decoded);
        let faulted = reference.is_err();
        for engine in EngineKind::ALL {
            if engine == EngineKind::Interp {
                continue;
            }
            combos += 1;
            let observed = self.observe(engine, exe, &decoded);
            compare_observed(
                &format!("engine:{}", engine.label()),
                &reference,
                &observed,
                &mut divs,
            );
        }

        // 2. Backend ladder × engine, against the accurate reference
        // report (reference engine: the interpreter again).
        let accurate = AccurateBackend::new(self.hierarchy.clone());
        let fast = FastCountBackend::matching(&self.hierarchy);
        let sampled_full =
            SampledBackend::new(self.hierarchy.clone(), 1.0).expect("1.0 is a valid fraction");
        let sampled_part = SampledBackend::new(self.hierarchy.clone(), PARTIAL_FRACTION)
            .expect("valid fraction")
            .with_min_insts(1);
        let pipelined = PipelinedBackend::new(
            self.hierarchy.clone(),
            DEFAULT_BTB_ENTRIES,
            DEFAULT_RAS_DEPTH,
        );
        let ref_report =
            accurate.run_one_decoded_on(exe, &decoded, &self.limits, EngineKind::Interp);
        for engine in EngineKind::ALL {
            for (tier, backend) in [
                ("accurate", &accurate as &dyn SimBackend),
                ("fast-count", &fast),
                ("sampled-full", &sampled_full),
                ("sampled-partial", &sampled_part),
                ("pipelined", &pipelined),
            ] {
                combos += 1;
                let combo = format!("backend:{tier}×engine:{}", engine.label());
                let report = backend.run_one_decoded_on(exe, &decoded, &self.limits, engine);
                match (&ref_report, &report) {
                    (Err(e), Err(o)) => diff_eq(&combo, "error", e, o, &mut divs),
                    (Err(e), Ok(_)) => push(&mut divs, &combo, "error", e, &"completed"),
                    (Ok(_), Err(o)) => push(&mut divs, &combo, "error", &"completed", o),
                    (Ok(r), Ok(o)) => match tier {
                        "accurate" | "sampled-full" => {
                            diff_stats(&combo, &r.stats, &o.stats, &mut divs);
                            diff_eq(&combo, "extrapolated", &false, &o.extrapolated, &mut divs);
                        }
                        "fast-count" => self.check_fast_count(&combo, r, o, &mut divs),
                        "pipelined" => self.check_pipelined(
                            &combo, engine, exe, &decoded, &pipelined, r, o, &mut divs,
                        ),
                        _ => {
                            self.check_sampled_partial(&combo, engine, exe, &decoded, o, &mut divs)
                        }
                    },
                }
            }
        }

        // 3. Pooled sessions: a 3-trial batch (distinct data images per
        // trial) through each persistent session; every trial must match
        // a direct, single-threaded accurate run over the same data.
        let data_seeds = [0x5EED_DA7A, 0xABCD_EF01, 0xD1F7_0002];
        let trials: Vec<Executable> = data_seeds
            .iter()
            .map(|&ds| Executable {
                data_segments: vec![(DATA_BASE, window_image(ds))],
                ..exe.clone()
            })
            .collect();
        let refs: Vec<Result<SimReport, BackendError>> = trials
            .iter()
            .map(|t| accurate.run_one_decoded_on(t, &decoded, &self.limits, EngineKind::Decoded))
            .collect();
        for (engine, np, session) in &self.sessions {
            let results = session.run(&trials);
            for (i, (got, want)) in results.iter().zip(&refs).enumerate() {
                combos += 1;
                let combo = format!("session:accurate×{}×np{np}[trial {i}]", engine.label());
                match (want, got) {
                    (Ok(w), Ok(g)) => {
                        diff_stats(&combo, &w.stats, &g.stats, &mut divs);
                        diff_eq(&combo, "backend", &w.backend, &g.backend, &mut divs);
                        diff_eq(
                            &combo,
                            "extrapolated",
                            &w.extrapolated,
                            &g.extrapolated,
                            &mut divs,
                        );
                    }
                    (Err(BackendError::Sim(w)), Err(CoreError::Sim(g))) => {
                        diff_eq(&combo, "error", w, g, &mut divs)
                    }
                    (w, g) => push(&mut divs, &combo, "outcome", w, g),
                }
            }
        }

        (combos, faulted, divs)
    }

    /// Diffs an arbitrary candidate backend against a reference backend
    /// on one executable under full-report equality (statistics minus
    /// wall time, backend-independent fields, error identity). This is
    /// the hook the shrinker acceptance test uses to plant a synthetic
    /// divergence; it is *not* fidelity-aware — only compare backends
    /// that promise identical reports.
    pub fn diff_backend_pair(
        &self,
        reference: &dyn SimBackend,
        candidate: &dyn SimBackend,
        exe: &Executable,
        engine: EngineKind,
    ) -> Vec<Divergence> {
        let mut divs = Vec::new();
        let combo = format!("pair:{}→{}", reference.name(), candidate.name());
        let decoded = match exe.decode() {
            Ok(d) => d,
            Err(_) => return divs,
        };
        let want = reference.run_one_decoded_on(exe, &decoded, &self.limits, engine);
        let got = candidate.run_one_decoded_on(exe, &decoded, &self.limits, engine);
        match (&want, &got) {
            (Ok(w), Ok(g)) => {
                diff_stats(&combo, &w.stats, &g.stats, &mut divs);
                diff_eq(
                    &combo,
                    "extrapolated",
                    &w.extrapolated,
                    &g.extrapolated,
                    &mut divs,
                );
            }
            (Err(w), Err(g)) => diff_eq(&combo, "error", w, g, &mut divs),
            (Err(w), Ok(_)) => push(&mut divs, &combo, "error", w, &"completed"),
            (Ok(_), Err(g)) => push(&mut divs, &combo, "error", &"completed", g),
        }
        divs
    }

    /// Shrinks the failing program of a divergent `(config, seed)` case
    /// to a locally minimal program that still diverges (same data
    /// image, same matrix), or `None` if the case does not diverge in
    /// the first place.
    pub fn shrink_case(
        &self,
        scenario: &str,
        config: &TortureConfig,
        seed: u64,
    ) -> Option<Program> {
        let exe = Self::make_executable(scenario, config, seed, seed ^ 0x5EED_DA7A);
        if self.diff_executable(&exe).2.is_empty() {
            return None;
        }
        Some(simtune_isa::shrink_program(&exe.program, |candidate| {
            let cand = Executable {
                program: candidate.clone(),
                ..exe.clone()
            };
            !self.diff_executable(&cand).2.is_empty()
        }))
    }

    /// FastCount contract: retired-instruction mix and line-granular
    /// fetch/access *totals* are bit-identical to accurate; cache
    /// hit/miss split is absent (all accesses report as misses).
    fn check_fast_count(
        &self,
        combo: &str,
        acc: &SimReport,
        fast: &SimReport,
        divs: &mut Vec<Divergence>,
    ) {
        diff_eq(
            combo,
            "stats.inst_mix",
            &acc.stats.inst_mix,
            &fast.stats.inst_mix,
            divs,
        );
        let a = &acc.stats.cache;
        let f = &fast.stats.cache;
        let reads = |c: &simtune_cache::CacheStats| c.read_hits + c.read_misses;
        let writes = |c: &simtune_cache::CacheStats| c.write_hits + c.write_misses;
        diff_eq(combo, "l1i.fetches", &reads(&a.l1i), &reads(&f.l1i), divs);
        diff_eq(combo, "l1d.reads", &reads(&a.l1d), &reads(&f.l1d), divs);
        diff_eq(combo, "l1d.writes", &writes(&a.l1d), &writes(&f.l1d), divs);
        diff_eq(combo, "extrapolated", &false, &fast.extrapolated, divs);
    }

    /// Pipelined contract: architectural results are the accurate
    /// tier's exactly (same replay, instruction mix included); cache
    /// statistics are *not* compared — the tier's prefetcher issues
    /// extra fills into the same hierarchy by design. The timing signal
    /// itself must exist, cost at least one cycle per retired
    /// instruction (an in-order pipeline retires at most one per
    /// cycle), and be bit-identical on an immediate re-run.
    #[allow(clippy::too_many_arguments)]
    fn check_pipelined(
        &self,
        combo: &str,
        engine: EngineKind,
        exe: &Executable,
        decoded: &DecodedProgram,
        backend: &PipelinedBackend,
        acc: &SimReport,
        got: &SimReport,
        divs: &mut Vec<Divergence>,
    ) {
        diff_eq(
            combo,
            "stats.inst_mix",
            &acc.stats.inst_mix,
            &got.stats.inst_mix,
            divs,
        );
        diff_eq(combo, "extrapolated", &false, &got.extrapolated, divs);
        match &got.cycles {
            None => push(divs, combo, "cycles", &"present", &"absent"),
            Some(c) => {
                let insts = got.stats.inst_mix.total() as f64;
                if c.total() < insts {
                    push(
                        divs,
                        combo,
                        "cycles.total",
                        &format!(">= {insts}"),
                        &c.total(),
                    );
                }
                match backend.run_one_decoded_on(exe, decoded, &self.limits, engine) {
                    Ok(again) => diff_eq(combo, "cycles.rerun", &got.cycles, &again.cycles, divs),
                    Err(e) => push(divs, combo, "cycles.rerun", &"completes", &e),
                }
            }
        }
    }

    /// Sampled contract, recomputed rather than trusted: rebuild the
    /// tier's budget from a counting pass, run an accurate prefix, apply
    /// the same linear extrapolation, and require bit-equality.
    fn check_sampled_partial(
        &self,
        combo: &str,
        engine: EngineKind,
        exe: &Executable,
        decoded: &DecodedProgram,
        got: &SimReport,
        divs: &mut Vec<Divergence>,
    ) {
        let line = self.hierarchy.line_bytes();
        let count = match simulate_counting_decoded_on(exe, decoded, line, self.limits, engine) {
            Ok(c) => c,
            Err(e) => {
                push(divs, combo, "sizing-pass", &"completes", &e);
                return;
            }
        };
        let total = count.stats.inst_mix.total();
        let budget = ((total as f64 * PARTIAL_FRACTION).ceil() as u64).max(1);
        let (prefix, completed) = match simulate_prefix_decoded_on(
            exe,
            decoded,
            &self.hierarchy,
            self.limits,
            budget,
            engine,
        ) {
            Ok(p) => p,
            Err(e) => {
                push(divs, combo, "prefix-pass", &"completes", &e);
                return;
            }
        };
        diff_eq(combo, "extrapolated", &!completed, &got.extrapolated, divs);
        let want = if completed {
            prefix.stats
        } else {
            let retired = prefix.stats.inst_mix.total().max(1);
            extrapolate(&prefix.stats, total, retired)
        };
        diff_stats(combo, &want, &got.stats, divs);
    }

    /// Runs `exe` on one engine from cold state and captures everything
    /// observable (or the error).
    fn observe(&self, engine: EngineKind, exe: &Executable, decoded: &DecodedProgram) -> Observed {
        let mut cpu = AtomicCpu::new(&exe.target);
        let mut mem = Memory::new();
        for (base, values) in &exe.data_segments {
            mem.write_f32_slice(*base, values).map_err(|e| {
                debug_assert!(false, "torture data segments are writable: {e}");
                e
            })?;
        }
        let mut hier = CacheHierarchy::new(self.hierarchy.clone());
        let stats = match engine {
            EngineKind::Interp => InterpEngine::new(&exe.program).run_with_hook(
                &mut cpu,
                &mut mem,
                &mut hier,
                self.limits,
                &mut NoopHook,
            )?,
            EngineKind::Decoded => DecodedEngine::new(decoded).run_with_hook(
                &mut cpu,
                &mut mem,
                &mut hier,
                self.limits,
                &mut NoopHook,
            )?,
            EngineKind::Threaded => {
                let threaded = ThreadedProgram::lower(decoded);
                ThreadedEngine::new(&threaded).run_with_hook(
                    &mut cpu,
                    &mut mem,
                    &mut hier,
                    self.limits,
                    &mut NoopHook,
                )?
            }
            EngineKind::Batch => {
                let mut hook = NoopHook;
                let mut lanes = vec![BatchLane {
                    cpu: &mut cpu,
                    mem: &mut mem,
                    hier: &mut hier,
                    hook: &mut hook,
                }];
                let stats = BatchEngine::new(decoded)
                    .run_lanes(&mut lanes, self.limits)
                    .remove(0)?;
                drop(lanes);
                stats
            }
        };
        Ok(capture(stats, &cpu, &mem))
    }
}

/// Deterministic data image filling the torture window (f32 words, same
/// distribution as the engine-equivalence property suite).
fn window_image(data_seed: u64) -> Vec<f32> {
    (0..TORTURE_WINDOW / 4)
        .map(|i| {
            let x = (data_seed ^ i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((x >> 40) as i64 - (1 << 23)) as f32 / 256.0
        })
        .collect()
}

fn capture(mut stats: SimStats, cpu: &AtomicCpu, mem: &Memory) -> ObservedState {
    // Wall time legitimately differs between runs of equal fidelity.
    stats.host_nanos = 0;
    ObservedState {
        stats,
        gprs: (0..32).map(|r| cpu.gpr(Gpr(r))).collect(),
        fpr_bits: (0..32).map(|r| cpu.fpr(Fpr(r)).to_bits()).collect(),
        vr_bits: (0..32)
            .map(|r| cpu.vr(Vr(r)).iter().map(|x| x.to_bits()).collect())
            .collect(),
        mem_bits: mem
            .read_f32_slice(DATA_BASE, (TORTURE_WINDOW / 4) as usize)
            .expect("torture window readable")
            .into_iter()
            .map(f32::to_bits)
            .collect(),
    }
}

fn push<E: std::fmt::Debug + ?Sized, A: std::fmt::Debug + ?Sized>(
    divs: &mut Vec<Divergence>,
    combo: &str,
    field: &str,
    expected: &E,
    actual: &A,
) {
    divs.push(Divergence {
        combo: combo.to_string(),
        field: field.to_string(),
        expected: format!("{expected:?}"),
        actual: format!("{actual:?}"),
    });
}

fn diff_eq<T: PartialEq + std::fmt::Debug>(
    combo: &str,
    field: &str,
    expected: &T,
    actual: &T,
    divs: &mut Vec<Divergence>,
) {
    if expected != actual {
        push(divs, combo, field, expected, actual);
    }
}

/// Field-wise statistics diff, `host_nanos` excluded.
fn diff_stats(combo: &str, expected: &SimStats, actual: &SimStats, divs: &mut Vec<Divergence>) {
    diff_eq(
        combo,
        "stats.inst_mix",
        &expected.inst_mix,
        &actual.inst_mix,
        divs,
    );
    diff_eq(
        combo,
        "stats.cache.l1i",
        &expected.cache.l1i,
        &actual.cache.l1i,
        divs,
    );
    diff_eq(
        combo,
        "stats.cache.l1d",
        &expected.cache.l1d,
        &actual.cache.l1d,
        divs,
    );
    diff_eq(
        combo,
        "stats.cache.l2",
        &expected.cache.l2,
        &actual.cache.l2,
        divs,
    );
    diff_eq(
        combo,
        "stats.cache.l3",
        &expected.cache.l3,
        &actual.cache.l3,
        divs,
    );
    diff_eq(
        combo,
        "stats.cache.dram_reads",
        &expected.cache.dram_reads,
        &actual.cache.dram_reads,
        divs,
    );
    diff_eq(
        combo,
        "stats.cache.dram_writes",
        &expected.cache.dram_writes,
        &actual.cache.dram_writes,
        divs,
    );
}

/// Engine-level comparison: full state on success, error identity on
/// failure; mixed outcomes are a divergence.
fn compare_observed(
    combo: &str,
    expected: &Observed,
    actual: &Observed,
    divs: &mut Vec<Divergence>,
) {
    match (expected, actual) {
        (Ok(e), Ok(a)) => {
            diff_stats(combo, &e.stats, &a.stats, divs);
            first_mismatch(combo, "gpr", &e.gprs, &a.gprs, divs);
            first_mismatch(combo, "fpr", &e.fpr_bits, &a.fpr_bits, divs);
            first_mismatch(combo, "vr", &e.vr_bits, &a.vr_bits, divs);
            first_mismatch(combo, "memory", &e.mem_bits, &a.mem_bits, divs);
        }
        (Err(e), Err(a)) => diff_eq(combo, "error", e, a, divs),
        (Err(e), Ok(_)) => push(divs, combo, "error", e, &"completed"),
        (Ok(_), Err(a)) => push(divs, combo, "error", &"completed", a),
    }
}

/// Reports the first differing element of two equal-length observations
/// (register files, memory images) instead of dumping both sides whole.
fn first_mismatch<T: PartialEq + std::fmt::Debug>(
    combo: &str,
    field: &str,
    expected: &[T],
    actual: &[T],
    divs: &mut Vec<Divergence>,
) {
    if let Some(i) =
        (0..expected.len().max(actual.len())).find(|&i| expected.get(i) != actual.get(i))
    {
        push(
            divs,
            combo,
            &format!("{field}[{i}]"),
            &expected.get(i),
            &actual.get(i),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_case_has_zero_divergences_across_the_matrix() {
        let harness = DiffHarness::tiny();
        for seed in 0..4 {
            let out = harness.run_case("baseline", &TortureConfig::baseline(), seed);
            assert!(out.passed(), "seed {seed}: {:#?}", out.divergences);
            assert!(out.combos > 40, "matrix should be broad: {}", out.combos);
            assert!(!out.faulted);
        }
    }

    #[test]
    fn fault_prone_cases_agree_on_the_error_everywhere() {
        let harness = DiffHarness::tiny();
        let cfg = TortureConfig::by_name("fault-prone").unwrap();
        let mut saw_fault = false;
        for seed in 0..12 {
            let out = harness.run_case("fault-prone", &cfg, seed);
            assert!(out.passed(), "seed {seed}: {:#?}", out.divergences);
            saw_fault |= out.faulted;
        }
        assert!(saw_fault, "some fault-prone seed must actually fault");
    }

    #[test]
    fn non_divergent_case_does_not_shrink() {
        let harness = DiffHarness::tiny();
        assert!(harness
            .shrink_case("baseline", &TortureConfig::baseline(), 1)
            .is_none());
    }
}
