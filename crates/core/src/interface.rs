//! The legacy function-registry override mechanism (paper Listings 3
//! and 4) — now a thin shim over the typed [`BackendRegistry`].
//!
//! TVM's Auto-Scheduler resolves its runner through a global function
//! registry; the paper overrides `auto_scheduler.local_runner.run` to
//! redirect execution onto simulators. This module mirrored that
//! integration style with bare `Arc<SimulatorRunFn>` pointers. The typed
//! [`crate::SimBackend`] API replaces it: this shim keeps the original
//! signatures compiling and wraps each resolved function in a
//! [`FnBackend`] when it reaches the runner, so old call sites keep
//! working while new code talks to [`crate::BackendRegistry`] directly.

#![allow(deprecated)]

use crate::backend::FnBackend;
use crate::runner::{SimulatorRunFn, SimulatorRunner};
use crate::CoreError;
use simtune_cache::HierarchyConfig;
use std::collections::HashMap;
use std::sync::Arc;

/// The registry key the simulator interface looks up, named after the
/// TVM function the paper overrides.
pub const LOCAL_RUNNER_RUN: &str = "auto_scheduler.local_runner.run";

/// A registry of named simulator run functions.
#[deprecated(
    since = "0.1.0",
    note = "implement the `SimBackend` trait and drive it through `SimSession` \
            (register named backends in `BackendRegistry`); this string-keyed \
            shim only exists for pre-backend call sites"
)]
#[derive(Default)]
pub struct FunctionRegistry {
    funcs: HashMap<String, Arc<SimulatorRunFn>>,
}

impl std::fmt::Debug for FunctionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FunctionRegistry")
            .field("registered", &self.funcs.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl FunctionRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `func` under `name` (the `@tvm._ffi.register_func`
    /// equivalent). With `override_existing == false`, re-registration
    /// of an existing name is rejected.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Registry`] when the name exists and
    /// overriding was not requested.
    pub fn register_func(
        &mut self,
        name: &str,
        func: Arc<SimulatorRunFn>,
        override_existing: bool,
    ) -> Result<(), CoreError> {
        if self.funcs.contains_key(name) && !override_existing {
            return Err(CoreError::Registry { name: name.into() });
        }
        self.funcs.insert(name.to_string(), func);
        Ok(())
    }

    /// Resolves a registered function (pre-backend signature, kept so
    /// legacy call sites compile unchanged).
    pub fn get(&self, name: &str) -> Option<Arc<SimulatorRunFn>> {
        self.funcs.get(name).cloned()
    }

    /// Builds a [`SimulatorRunner`] that uses the registered
    /// [`LOCAL_RUNNER_RUN`] override (wrapped in a [`FnBackend`]) when
    /// present, and the built-in instruction-accurate simulator
    /// otherwise.
    pub fn runner(&self, hierarchy: HierarchyConfig) -> SimulatorRunner {
        match self.get(LOCAL_RUNNER_RUN) {
            Some(f) => SimulatorRunner::new(hierarchy)
                .with_backend(Arc::new(FnBackend::new(LOCAL_RUNNER_RUN, f))),
            None => SimulatorRunner::new(hierarchy),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtune_isa::SimStats;

    fn stub() -> Arc<SimulatorRunFn> {
        Arc::new(|_| {
            Ok(SimStats {
                host_nanos: 7,
                ..SimStats::default()
            })
        })
    }

    #[test]
    fn register_and_resolve() {
        let mut reg = FunctionRegistry::new();
        reg.register_func(LOCAL_RUNNER_RUN, stub(), false).unwrap();
        assert!(reg.get(LOCAL_RUNNER_RUN).is_some());
        assert!(reg.get("missing").is_none());
    }

    #[test]
    fn double_registration_needs_override_flag() {
        let mut reg = FunctionRegistry::new();
        reg.register_func("f", stub(), false).unwrap();
        let err = reg.register_func("f", stub(), false).unwrap_err();
        assert!(matches!(err, CoreError::Registry { ref name } if name == "f"));
        reg.register_func("f", stub(), true).unwrap();
    }

    #[test]
    fn runner_uses_registered_override() {
        use simtune_isa::{Gpr, Inst, ProgramBuilder, TargetIsa};

        let mut reg = FunctionRegistry::new();
        reg.register_func(LOCAL_RUNNER_RUN, stub(), true).unwrap();
        let runner = reg.runner(HierarchyConfig::tiny_for_tests());
        let mut b = ProgramBuilder::new();
        b.push(Inst::Li { rd: Gpr(0), imm: 0 });
        b.push(Inst::Halt);
        let exe = simtune_isa::Executable::new("t", b.build().unwrap(), TargetIsa::riscv_u74());
        let out = runner.run(&[exe]);
        assert_eq!(out[0].as_ref().unwrap().host_nanos, 7);
    }
}
