//! Persistent worker pool for simulation batches.
//!
//! Before this subsystem, [`crate::SimSession::run`] spawned a fresh
//! `std::thread::scope` per batch: a tuning sweep of thousands of
//! batches paid thread spawn/teardown thousands of times, and every
//! worker serialized on one results mutex. Pac-Sim hides simulation
//! latency by overlapping work with execution, and "Parallelizing a
//! modern GPU simulator" attributes most of its speedup to removing
//! synchronization on shared simulator state (PAPERS.md) — this module
//! applies both observations to the batch path:
//!
//! * **workers live for the session** — [`WorkerPool`] spawns
//!   `n_parallel` threads once; batches are enqueued on a chunked deque
//!   and workers claim index chunks with one atomic `fetch_add`, so the
//!   steady-state hot path takes no lock at all;
//! * **submission is asynchronous** — [`crate::SimSession::submit`]
//!   returns a [`BatchTicket`] immediately, so a tuning loop can lower
//!   and decode batch *k+1* while batch *k* simulates;
//! * **results are order-preserving** — every trial writes its own
//!   pre-allocated slot, and [`BatchTicket::wait`] returns reports in
//!   submission order regardless of which worker ran what.
//!
//! # Memoization and determinism
//!
//! Memo lookups happen on the *submitting* thread, in submission order
//! (see `Batch::plan`): a cached candidate is resolved before any
//! worker sees it, and a candidate whose fingerprint is already
//! executing in-flight becomes a *follower* of that leader instead of
//! a duplicate execution. Because the hit/miss decision is made by the
//! deterministic, single-threaded submitter, an unbounded
//! [`SimCache`]'s hit/miss counters are bit-identical at every
//! `n_parallel` — the property `crates/core/tests/pool_determinism.rs`
//! locks in. (A *bounded* cache may flush a generation while a batch is
//! in flight, and a *failed* leader is deliberately not memoized, so in
//! those two corner cases the counters — never the results — can vary
//! with timing.)

use crate::backend::{SimBackend, SimReport};
use crate::memo::{fingerprint, SimCache};
use crate::metrics::{PredictorStats, WorkerPoolStats};
use crate::CoreError;
use simtune_isa::{EngineKind, Executable, RunLimits};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, LockResult, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// Trials a worker claims per atomic queue operation. Small enough to
/// balance uneven trial costs across workers, large enough that the
/// claim itself (one `fetch_add`) is amortized.
const CHUNK: usize = 4;

/// Acquires a lock even when a previous holder panicked. Every mutex in
/// this module guards plain data (result slots, queues, counters) whose
/// invariants hold between statements, so a poisoned lock is safe to
/// re-enter — a panicking trial is already converted to a
/// [`CoreError::Pipeline`] by `run_task`, and one tenant's crash must
/// not cascade into aborting every other waiter of a shared pool.
fn relock<T>(result: LockResult<MutexGuard<'_, T>>) -> MutexGuard<'_, T> {
    result.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Per-tenant execution counters, shared between a service tenant's
/// session (which bumps memo hits/misses at plan time) and the pool's
/// workers (which bump trials/busy as they execute that tenant's
/// batches). The atomics are monotone and lock-free; the predictor
/// accumulator is a mutex because escalated tuning runs merge whole
/// [`PredictorStats`] records at once, always from the tenant's own
/// producer thread.
#[derive(Default)]
pub(crate) struct TenantCounters {
    pub(crate) memo_hits: AtomicU64,
    pub(crate) memo_misses: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) trials: AtomicU64,
    pub(crate) busy_nanos: AtomicU64,
    pub(crate) predictor: Mutex<PredictorStats>,
}

/// A write-once result slot a duplicate trial (follower) waits on until
/// its leader finishes executing.
pub(crate) struct ResultCell {
    slot: Mutex<Option<Result<SimReport, CoreError>>>,
    ready: Condvar,
}

impl ResultCell {
    fn new() -> Self {
        ResultCell {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn publish(&self, r: Result<SimReport, CoreError>) {
        let mut slot = relock(self.slot.lock());
        *slot = Some(r);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<SimReport, CoreError> {
        let mut slot = relock(self.slot.lock());
        loop {
            if let Some(r) = slot.as_ref() {
                return r.clone();
            }
            slot = relock(self.ready.wait(slot));
        }
    }
}

/// Fingerprints currently executing somewhere in the session, so a
/// duplicate submitted while its leader is in flight rides along
/// instead of re-executing. Shared by every clone of one session.
#[derive(Default)]
pub(crate) struct InflightMap {
    cells: Mutex<HashMap<Vec<u8>, Arc<ResultCell>>>,
}

/// Everything a worker needs to execute one batch's trials.
pub(crate) struct BatchCtx {
    pub(crate) backend: Arc<dyn SimBackend>,
    pub(crate) limits: RunLimits,
    /// Replay engine every trial of this batch runs on; when it is
    /// [`EngineKind::Batch`] and the backend opts in
    /// ([`SimBackend::supports_soa_batch`]), planning additionally
    /// groups same-program trials into SoA task units.
    pub(crate) engine: EngineKind,
    pub(crate) memo: Option<Arc<SimCache>>,
    pub(crate) inflight: Arc<InflightMap>,
    /// Scheduling lane: the pool round-robins across lanes, so each
    /// service tenant gets its own lane and none starves another.
    /// Standalone sessions all share lane 0 (plain FIFO).
    pub(crate) lane: usize,
    /// Per-tenant counters, when this batch belongs to a service tenant.
    pub(crate) tenant: Option<Arc<TenantCounters>>,
}

/// Per-trial execution plan, decided at submission time.
enum TrialPlan {
    /// Run on a worker. `cell` is set when other trials may be waiting
    /// on this fingerprint (memoized leaders).
    Execute {
        key: Option<Vec<u8>>,
        cell: Option<Arc<ResultCell>>,
    },
    /// Answered from the memo cache at submit; the slot is pre-filled.
    Resolved,
    /// Duplicate of an in-flight leader; filled from `cell` at wait.
    Follower { cell: Arc<ResultCell> },
}

/// One unit of claimable work: a single trial, or a group of
/// same-program trials a SoA-capable backend replays as lanes of one
/// batched run ([`SimBackend::run_soa_batch`]).
enum TaskUnit {
    /// One trial, executed via [`SimBackend::run_one_decoded_on`].
    Single(usize),
    /// Trials of one program (differing only in data segments), in
    /// submission order. Always at least two entries — a group of one
    /// degenerates to `Single` at plan time.
    Group(Vec<usize>),
}

impl TaskUnit {
    fn trials(&self) -> usize {
        match self {
            TaskUnit::Single(_) => 1,
            TaskUnit::Group(idxs) => idxs.len(),
        }
    }
}

/// One submitted batch: trials, plans, result slots and completion
/// bookkeeping. Lives on the pool's deque until drained.
pub(crate) struct Batch {
    ctx: BatchCtx,
    exes: Vec<Executable>,
    plans: Vec<TrialPlan>,
    /// Work units that need a worker (leaders + unmemoized trials,
    /// possibly grouped for SoA replay).
    tasks: Vec<TaskUnit>,
    /// Chunk cursor into `tasks`; workers claim with `fetch_add`.
    next: AtomicUsize,
    /// Task units a worker claims per cursor bump, weighted so one
    /// claim carries about [`CHUNK`] *trials*: SoA groups already bundle
    /// several trials, and claiming [`CHUNK`] of them at once would
    /// serialize a whole duplicate-heavy batch onto one worker.
    claim: usize,
    results: Mutex<Vec<Option<Result<SimReport, CoreError>>>>,
    /// Tasks not yet finished; guarded so `done` can signal exactly once.
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Batch {
    /// Plans a batch on the submitting thread: memo lookups and
    /// in-flight deduplication happen here, in submission order, so the
    /// cache's hit/miss decision is independent of worker timing.
    pub(crate) fn plan(ctx: BatchCtx, exes: Vec<Executable>) -> Arc<Batch> {
        let n = exes.len();
        let mut plans = Vec::with_capacity(n);
        let mut execute = Vec::new();
        let mut results: Vec<Option<Result<SimReport, CoreError>>> = (0..n).map(|_| None).collect();
        let memo_cfg = ctx.ctx_memo();
        for (i, exe) in exes.iter().enumerate() {
            let plan = match &memo_cfg {
                Some((cache, digest)) => {
                    let key = fingerprint(exe, digest, &ctx.limits, ctx.engine);
                    // Hold the in-flight lock across the cache probe so a
                    // leader finishing concurrently is seen in exactly one
                    // of the two places (it inserts into the cache before
                    // deregistering from the in-flight map).
                    let mut inflight = relock(ctx.inflight.cells.lock());
                    if let Some(cell) = inflight.get(&key) {
                        cache.note_hit();
                        ctx.tenant_memo_hit();
                        TrialPlan::Follower { cell: cell.clone() }
                    } else if let Some(hit) = cache.peek(&key) {
                        cache.note_hit();
                        ctx.tenant_memo_hit();
                        results[i] = Some(Ok(hit));
                        TrialPlan::Resolved
                    } else {
                        cache.note_miss();
                        if let Some(t) = &ctx.tenant {
                            t.memo_misses.fetch_add(1, Ordering::Relaxed);
                        }
                        let cell = Arc::new(ResultCell::new());
                        inflight.insert(key.clone(), cell.clone());
                        TrialPlan::Execute {
                            key: Some(key),
                            cell: Some(cell),
                        }
                    }
                }
                None => TrialPlan::Execute {
                    key: None,
                    cell: None,
                },
            };
            if matches!(plan, TrialPlan::Execute { .. }) {
                execute.push(i);
            }
            plans.push(plan);
        }
        let tasks = plan_tasks(&ctx, &exes, execute);
        let remaining = tasks.len();
        let widest = tasks.iter().map(TaskUnit::trials).max().unwrap_or(1);
        let claim = (CHUNK / widest).max(1);
        Arc::new(Batch {
            ctx,
            exes,
            plans,
            tasks,
            next: AtomicUsize::new(0),
            claim,
            results: Mutex::new(results),
            remaining: Mutex::new(remaining),
            done: Condvar::new(),
        })
    }

    pub(crate) fn n_tasks(&self) -> usize {
        self.tasks.len()
    }

    fn drained(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.tasks.len()
    }

    /// Executes one claimed work unit; returns how many trials it held.
    fn run_unit(&self, unit: &TaskUnit) -> usize {
        match unit {
            TaskUnit::Single(idx) => self.run_task(*idx),
            TaskUnit::Group(idxs) => self.run_group(idxs),
        }
        unit.trials()
    }

    /// Executes one trial and publishes its result.
    fn run_task(&self, idx: usize) {
        let exe = &self.exes[idx];
        // A panicking backend must not strand the batch: convert the
        // panic into a pipeline error so `wait` always returns.
        let r =
            catch_unwind(AssertUnwindSafe(|| exec_trial(&self.ctx, exe))).unwrap_or_else(|_| {
                Err(CoreError::Pipeline(format!(
                    "backend panicked while simulating {:?}",
                    exe.name
                )))
            });
        self.publish(idx, r);
    }

    /// Executes a group of same-program trials as lanes of one SoA
    /// batch, publishing each lane's result independently.
    fn run_group(&self, idxs: &[usize]) {
        // One decode covers the whole group; a program the static
        // validator rejects falls back to per-trial execution (which in
        // turn falls back to the backend's raw entry point).
        let decoded = match self.exes[idxs[0]].decode() {
            Ok(d) => d,
            Err(_) => {
                for &idx in idxs {
                    self.run_task(idx);
                }
                return;
            }
        };
        let refs: Vec<&Executable> = idxs.iter().map(|&i| &self.exes[i]).collect();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.ctx
                .backend
                .run_soa_batch(&refs, &decoded, &self.ctx.limits)
        }));
        match outcome {
            Ok(results) if results.len() == idxs.len() => {
                for (&idx, r) in idxs.iter().zip(results) {
                    self.publish(idx, r.map_err(CoreError::from));
                }
            }
            Ok(results) => {
                // A buggy override returned the wrong shape; every lane
                // must still resolve or `wait` would hang.
                for &idx in idxs {
                    self.publish(
                        idx,
                        Err(CoreError::Pipeline(format!(
                            "backend returned {} results for a {}-lane SoA batch",
                            results.len(),
                            idxs.len()
                        ))),
                    );
                }
            }
            Err(_) => {
                for &idx in idxs {
                    self.publish(
                        idx,
                        Err(CoreError::Pipeline(format!(
                            "backend panicked while simulating {:?}",
                            self.exes[idx].name
                        ))),
                    );
                }
            }
        }
    }

    /// Publishes one trial's result: memo insertion (leaders only),
    /// follower wake-up, in-flight deregistration, then the result slot.
    fn publish(&self, idx: usize, r: Result<SimReport, CoreError>) {
        if let TrialPlan::Execute {
            key: Some(key),
            cell,
        } = &self.plans[idx]
        {
            if let Some(memo) = &self.ctx.memo {
                // Errors are deliberately not memoized: a failed
                // candidate stays cheap to retry and cannot mask a
                // transient fault. Insert *before* deregistering so a
                // concurrent submitter finds the result in exactly one
                // of cache / in-flight map.
                if let Ok(report) = &r {
                    memo.insert(key.clone(), report.clone());
                }
                if let Some(cell) = cell {
                    cell.publish(r.clone());
                }
                relock(self.ctx.inflight.cells.lock()).remove(key);
            }
        }
        relock(self.results.lock())[idx] = Some(r);
    }

    fn complete_tasks(&self, n: usize) {
        let mut remaining = relock(self.remaining.lock());
        *remaining -= n;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }
}

impl BatchCtx {
    fn ctx_memo(&self) -> Option<(Arc<SimCache>, String)> {
        match (&self.memo, self.backend.fidelity_digest()) {
            (Some(cache), Some(digest)) => Some((cache.clone(), digest)),
            _ => None,
        }
    }

    fn tenant_memo_hit(&self) {
        if let Some(t) = &self.tenant {
            t.memo_hits.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Most lanes one SoA work unit carries. Groups are split into chunks
/// of this size so a duplicate-heavy batch still spreads across the
/// pool's workers instead of serializing behind one giant group; the
/// cap is a constant (not derived from `n_parallel`) so the planned
/// units are identical at every parallelism level.
const SOA_MAX_LANES: usize = 8;

/// Turns the executable trial indices into claimable work units. With
/// [`EngineKind::Batch`] on a SoA-capable backend, trials of one
/// (program, target) are grouped into units of up to [`SOA_MAX_LANES`]
/// lanes; grouping happens on the submitting thread, keyed by first
/// occurrence in submission order, so the units — and therefore the
/// memo traffic and results — are deterministic at every `n_parallel`.
fn plan_tasks(ctx: &BatchCtx, exes: &[Executable], execute: Vec<usize>) -> Vec<TaskUnit> {
    if ctx.engine != EngineKind::Batch || !ctx.backend.supports_soa_batch() {
        return execute.into_iter().map(TaskUnit::Single).collect();
    }
    // Linear scan beats hashing here: batches are small and `Program`
    // has no `Hash`.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for i in execute {
        let exe = &exes[i];
        match groups.iter_mut().find(|g| {
            let rep = &exes[g[0]];
            g.len() < SOA_MAX_LANES && rep.target == exe.target && rep.program == exe.program
        }) {
            Some(group) => group.push(i),
            None => groups.push(vec![i]),
        }
    }
    groups
        .into_iter()
        .map(|g| match g.as_slice() {
            [only] => TaskUnit::Single(*only),
            _ => TaskUnit::Group(g),
        })
        .collect()
}

/// Runs one executable the way the per-batch scoped executor used to:
/// decode once, feed the decoded handle to the backend on the session's
/// replay engine, fall back to the raw entry point for backends that
/// drive their own simulator.
fn exec_trial(ctx: &BatchCtx, exe: &Executable) -> Result<SimReport, CoreError> {
    match exe.decode() {
        Ok(decoded) => ctx
            .backend
            .run_one_decoded_on(exe, &decoded, &ctx.limits, ctx.engine),
        Err(_) => ctx.backend.run_one(exe, &ctx.limits),
    }
    .map_err(CoreError::from)
}

/// Handle on one submitted batch; [`BatchTicket::wait`] blocks until
/// every trial finished and returns reports in submission order.
///
/// The ticket keeps the session's worker pool alive, so results are
/// delivered even when the [`crate::SimSession`] that produced the
/// ticket is dropped first.
pub struct BatchTicket {
    batch: Arc<Batch>,
    _pool: Arc<WorkerPool>,
}

impl BatchTicket {
    pub(crate) fn new(batch: Arc<Batch>, pool: Arc<WorkerPool>) -> Self {
        BatchTicket { batch, _pool: pool }
    }

    /// Number of trials in the batch.
    pub fn len(&self) -> usize {
        self.batch.exes.len()
    }

    /// True for an empty submission.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until the batch completed; returns one result per
    /// submitted executable, in submission order.
    pub fn wait(self) -> Vec<Result<SimReport, CoreError>> {
        {
            let mut remaining = relock(self.batch.remaining.lock());
            while *remaining > 0 {
                remaining = relock(self.batch.done.wait(remaining));
            }
        }
        let mut results = std::mem::take(&mut *relock(self.batch.results.lock()));
        // Followers resolve on the consumer thread: their leader may
        // live in an earlier batch, but leaders are always enqueued no
        // later than their followers, so the cell is (or will be)
        // published by a worker — never by us — and this cannot
        // deadlock.
        for (i, plan) in self.batch.plans.iter().enumerate() {
            if let TrialPlan::Follower { cell } = plan {
                results[i] = Some(cell.wait());
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect()
    }
}

/// Pending batches, bucketed by lane. Workers pick the next batch
/// round-robin across lanes (batch granularity), so N tenants sharing
/// one pool each get every Nth scheduling decision: a tenant that
/// enqueues a long backlog cannot starve another tenant's single batch.
/// Within a lane, batches run in FIFO submission order — which is what
/// keeps a standalone session (everything on lane 0) behaving exactly
/// like the pre-lane pool.
#[derive(Default)]
struct LaneQueues {
    lanes: BTreeMap<usize, VecDeque<Arc<Batch>>>,
    /// Lowest lane id the next scheduling decision may pick.
    cursor: usize,
}

impl LaneQueues {
    fn push(&mut self, lane: usize, batch: Arc<Batch>) {
        self.lanes.entry(lane).or_default().push_back(batch);
    }

    /// Returns the front batch of the next non-empty lane at or after
    /// the cursor (wrapping), pruning drained batches and empty lanes.
    fn next_batch(&mut self) -> Option<Arc<Batch>> {
        self.lanes.retain(|_, q| {
            while q.front().is_some_and(|b| b.drained()) {
                q.pop_front();
            }
            !q.is_empty()
        });
        let lane = self
            .lanes
            .range(self.cursor..)
            .next()
            .map(|(&l, _)| l)
            .or_else(|| self.lanes.keys().next().copied())?;
        self.cursor = lane + 1;
        Some(
            self.lanes[&lane]
                .front()
                .expect("lane retained non-empty")
                .clone(),
        )
    }
}

struct PoolShared {
    queue: Mutex<LaneQueues>,
    work: Condvar,
    shutdown: AtomicBool,
    busy_nanos: AtomicU64,
    trials: AtomicU64,
    batches: AtomicU64,
}

/// A session-lifetime pool of simulation workers: spawn once, feed
/// batches forever. See the module docs for the design rationale.
pub(crate) struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    workers: usize,
    started: Instant,
}

impl WorkerPool {
    /// Spawns `workers` (at least 1) simulation threads.
    pub(crate) fn new(workers: usize) -> Arc<WorkerPool> {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(LaneQueues::default()),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            busy_nanos: AtomicU64::new(0),
            trials: AtomicU64::new(0),
            batches: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("simtune-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn simulation worker")
            })
            .collect();
        Arc::new(WorkerPool {
            shared,
            handles: Mutex::new(handles),
            workers,
            started: Instant::now(),
        })
    }

    /// Enqueues a planned batch; trials with nothing to execute (all
    /// memo hits) never reach the queue.
    pub(crate) fn enqueue(&self, batch: Arc<Batch>) {
        debug_assert!(batch.n_tasks() > 0, "empty batches are resolved at submit");
        self.shared.batches.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = &batch.ctx.tenant {
            t.batches.fetch_add(1, Ordering::Relaxed);
        }
        let lane = batch.ctx.lane;
        // Wake exactly as many workers as can claim a chunk of this
        // batch: a surplus wakeup locks the queue, finds the batch
        // drained, and goes back to sleep — pure scheduler churn that on
        // a box with few cores time-slices *against* the workers doing
        // real work. Busy workers re-scan the queue when their batch
        // drains, so undershooting cannot strand a later batch.
        let chunks = batch.tasks.len().div_ceil(batch.claim.max(1));
        let mut queue = relock(self.shared.queue.lock());
        queue.push(lane, batch);
        drop(queue);
        if chunks >= self.workers {
            self.shared.work.notify_all();
        } else {
            for _ in 0..chunks {
                self.shared.work.notify_one();
            }
        }
    }

    /// Number of worker threads serving this pool.
    pub(crate) fn workers(&self) -> usize {
        self.workers
    }

    /// Lifetime execution counters of this pool.
    pub(crate) fn stats(&self) -> WorkerPoolStats {
        WorkerPoolStats {
            workers: self.workers,
            batches: self.shared.batches.load(Ordering::Relaxed),
            trials: self.shared.trials.load(Ordering::Relaxed),
            busy_nanos: self.shared.busy_nanos.load(Ordering::Relaxed),
            wall_nanos: self.started.elapsed().as_nanos() as u64,
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // The store must happen under the queue mutex: a worker checks
        // the flag and blocks on `work` while holding that lock, so a
        // lock-free store could land between its check and its wait and
        // the notify below would be lost — leaving the worker asleep
        // forever and this join deadlocked.
        {
            let _queue = relock(self.shared.queue.lock());
            self.shared.shutdown.store(true, Ordering::SeqCst);
        }
        self.shared.work.notify_all();
        for handle in relock(self.handles.lock()).drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        // Pick the next batch round-robin across lanes.
        let batch = {
            let mut queue = relock(shared.queue.lock());
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                match queue.next_batch() {
                    Some(batch) => break batch,
                    None => queue = relock(shared.work.wait(queue)),
                }
            }
        };
        // Claim chunks lock-free until the picked batch is drained,
        // then return to the scheduler. Fairness is batch-granular:
        // once a batch starts it runs to completion, but the *next*
        // batch comes from the next lane in round-robin order.
        loop {
            let start = batch.next.fetch_add(batch.claim, Ordering::Relaxed);
            if start >= batch.tasks.len() {
                break;
            }
            let end = (start + batch.claim).min(batch.tasks.len());
            let t0 = Instant::now();
            let mut executed = 0u64;
            for unit in &batch.tasks[start..end] {
                executed += batch.run_unit(unit) as u64;
            }
            let elapsed = t0.elapsed().as_nanos() as u64;
            shared.busy_nanos.fetch_add(elapsed, Ordering::Relaxed);
            shared.trials.fetch_add(executed, Ordering::Relaxed);
            if let Some(t) = &batch.ctx.tenant {
                t.busy_nanos.fetch_add(elapsed, Ordering::Relaxed);
                t.trials.fetch_add(executed, Ordering::Relaxed);
            }
            batch.complete_tasks(end - start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendError, Fidelity};
    use simtune_isa::SimStats;

    /// A backend that reports a per-executable marker (the name's
    /// length) so order preservation is observable, with a configurable
    /// artificial panic.
    struct MarkerBackend {
        panic_on: Option<String>,
    }

    impl SimBackend for MarkerBackend {
        fn name(&self) -> &str {
            "marker"
        }
        fn fidelity(&self) -> Fidelity {
            Fidelity::Custom
        }
        fn run_one(
            &self,
            exe: &Executable,
            _limits: &RunLimits,
        ) -> Result<SimReport, BackendError> {
            if self.panic_on.as_deref() == Some(exe.name.as_str()) {
                panic!("backend bug");
            }
            Ok(SimReport {
                stats: SimStats {
                    host_nanos: exe.name.len() as u64,
                    ..SimStats::default()
                },
                backend: "marker".into(),
                fidelity: Fidelity::Custom,
                extrapolated: false,
                cycles: None,
            })
        }
    }

    fn exe(name: &str) -> Executable {
        use simtune_isa::{Gpr, Inst, ProgramBuilder, TargetIsa};
        let mut b = ProgramBuilder::new();
        b.push(Inst::Li { rd: Gpr(1), imm: 1 });
        b.push(Inst::Halt);
        Executable::new(name, b.build().unwrap(), TargetIsa::riscv_u74())
    }

    fn ctx(panic_on: Option<&str>) -> BatchCtx {
        BatchCtx {
            backend: Arc::new(MarkerBackend {
                panic_on: panic_on.map(str::to_string),
            }),
            limits: RunLimits::default(),
            engine: EngineKind::default(),
            memo: None,
            inflight: Arc::new(InflightMap::default()),
            lane: 0,
            tenant: None,
        }
    }

    #[test]
    fn pool_preserves_order_across_many_batches() {
        let pool = WorkerPool::new(4);
        for round in 0..16 {
            let names: Vec<String> = (0..9).map(|i| "x".repeat(round * 9 + i + 1)).collect();
            let exes: Vec<Executable> = names.iter().map(|n| exe(n)).collect();
            let batch = Batch::plan(ctx(None), exes);
            pool.enqueue(batch.clone());
            let out = BatchTicket::new(batch, pool.clone()).wait();
            for (name, r) in names.iter().zip(out) {
                assert_eq!(r.unwrap().stats.host_nanos, name.len() as u64);
            }
        }
        let s = pool.stats();
        assert_eq!(s.batches, 16);
        assert_eq!(s.trials, 16 * 9);
        assert_eq!(s.workers, 4);
        assert!(s.busy_nanos <= s.wall_nanos.saturating_mul(4));
    }

    #[test]
    fn panicking_backend_yields_an_error_not_a_hang() {
        let pool = WorkerPool::new(2);
        let exes = vec![exe("ok1"), exe("boom"), exe("ok2")];
        let batch = Batch::plan(ctx(Some("boom")), exes);
        pool.enqueue(batch.clone());
        let out = BatchTicket::new(batch, pool.clone()).wait();
        assert!(out[0].is_ok());
        assert!(matches!(out[1], Err(CoreError::Pipeline(_))));
        assert!(out[2].is_ok());
        // The pool survives the panic and keeps serving batches.
        let batch = Batch::plan(ctx(None), vec![exe("after")]);
        pool.enqueue(batch.clone());
        assert!(BatchTicket::new(batch, pool.clone()).wait()[0].is_ok());
    }

    #[test]
    fn dropping_the_pool_joins_workers() {
        let pool = WorkerPool::new(3);
        let batch = Batch::plan(ctx(None), vec![exe("a"), exe("b")]);
        pool.enqueue(batch.clone());
        BatchTicket::new(batch, pool).wait();
        // Drop happened here; reaching this line without hanging is the
        // assertion.
    }

    #[test]
    fn poisoned_result_cell_is_recovered_not_repanicked() {
        let cell = Arc::new(ResultCell::new());
        // Poison the cell's mutex: panic while holding the guard.
        let poisoner = cell.clone();
        std::thread::spawn(move || {
            let _guard = poisoner.slot.lock().unwrap();
            panic!("poison the lock");
        })
        .join()
        .unwrap_err();
        assert!(cell.slot.is_poisoned());
        // publish/wait still work: the guarded Option is plain data.
        cell.publish(Err(CoreError::Pipeline("leader died".into())));
        assert!(matches!(cell.wait(), Err(CoreError::Pipeline(_))));
    }

    /// SoA-capable marker backend: records the lane count of every
    /// grouped replay it is handed.
    struct SoaBackend {
        groups: Arc<Mutex<Vec<usize>>>,
    }

    impl SimBackend for SoaBackend {
        fn name(&self) -> &str {
            "soa-marker"
        }
        fn fidelity(&self) -> Fidelity {
            Fidelity::Custom
        }
        fn run_one(
            &self,
            exe: &Executable,
            _limits: &RunLimits,
        ) -> Result<SimReport, BackendError> {
            Ok(SimReport {
                stats: SimStats {
                    host_nanos: exe.name.len() as u64,
                    ..SimStats::default()
                },
                backend: "soa-marker".into(),
                fidelity: Fidelity::Custom,
                extrapolated: false,
                cycles: None,
            })
        }
        fn supports_soa_batch(&self) -> bool {
            true
        }
        fn run_soa_batch(
            &self,
            exes: &[&Executable],
            _decoded: &simtune_isa::DecodedProgram,
            limits: &RunLimits,
        ) -> Vec<Result<SimReport, BackendError>> {
            self.groups.lock().unwrap().push(exes.len());
            exes.iter().map(|e| self.run_one(e, limits)).collect()
        }
    }

    #[test]
    fn batch_engine_groups_same_program_trials() {
        use simtune_isa::{Gpr, Inst, ProgramBuilder, TargetIsa, DATA_BASE};
        let variant = |imm: i64, name: &str, datum: f32| {
            let mut b = ProgramBuilder::new();
            b.push(Inst::Li { rd: Gpr(1), imm });
            b.push(Inst::Halt);
            Executable::new(name, b.build().unwrap(), TargetIsa::riscv_u74())
                .with_segment(DATA_BASE, vec![datum])
        };
        // Three trials of program A (data-only variants), two of B, in
        // interleaved submission order.
        let exes = vec![
            variant(1, "a-one", 0.0),
            variant(2, "b-one!", 1.0),
            variant(1, "a-two2", 2.0),
            variant(2, "b-two!!", 3.0),
            variant(1, "a-three3", 4.0),
        ];
        let groups = Arc::new(Mutex::new(Vec::new()));
        let ctx = BatchCtx {
            backend: Arc::new(SoaBackend {
                groups: groups.clone(),
            }),
            limits: RunLimits::default(),
            engine: EngineKind::Batch,
            memo: None,
            inflight: Arc::new(InflightMap::default()),
            lane: 0,
            tenant: None,
        };
        let pool = WorkerPool::new(2);
        let batch = Batch::plan(ctx, exes.clone());
        assert_eq!(batch.n_tasks(), 2, "one task unit per distinct program");
        pool.enqueue(batch.clone());
        let out = BatchTicket::new(batch, pool.clone()).wait();
        for (exe, r) in exes.iter().zip(&out) {
            assert_eq!(
                r.as_ref().unwrap().stats.host_nanos,
                exe.name.len() as u64,
                "lane results must land in submission order"
            );
        }
        let mut sizes = groups.lock().unwrap().clone();
        sizes.sort_unstable();
        assert_eq!(sizes, [2, 3]);
        assert_eq!(
            pool.stats().trials,
            5,
            "trial counters see lanes, not units"
        );
    }

    /// A backend that blocks every trial on a shared gate, then records
    /// execution order — makes the scheduler's lane interleaving
    /// observable and deterministic.
    struct GateBackend {
        gate: Arc<(Mutex<bool>, Condvar)>,
        order: Arc<Mutex<Vec<String>>>,
    }

    impl SimBackend for GateBackend {
        fn name(&self) -> &str {
            "gate"
        }
        fn fidelity(&self) -> Fidelity {
            Fidelity::Custom
        }
        fn run_one(
            &self,
            exe: &Executable,
            _limits: &RunLimits,
        ) -> Result<SimReport, BackendError> {
            let (open, cv) = &*self.gate;
            let mut open = open.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            drop(open);
            self.order.lock().unwrap().push(exe.name.clone());
            Ok(SimReport {
                stats: SimStats::default(),
                backend: "gate".into(),
                fidelity: Fidelity::Custom,
                extrapolated: false,
                cycles: None,
            })
        }
    }

    #[test]
    fn lanes_are_scheduled_round_robin() {
        // One worker; lane 0 queues two batches before lane 1 queues
        // one. Round-robin must serve lane 1 between lane 0's batches
        // instead of draining lane 0's backlog first.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let order = Arc::new(Mutex::new(Vec::new()));
        let pool = WorkerPool::new(1);
        let gated_ctx = |lane: usize, tenant: Option<Arc<TenantCounters>>| BatchCtx {
            backend: Arc::new(GateBackend {
                gate: gate.clone(),
                order: order.clone(),
            }),
            limits: RunLimits::default(),
            engine: EngineKind::default(),
            memo: None,
            inflight: Arc::new(InflightMap::default()),
            lane,
            tenant,
        };
        let t0 = Arc::new(TenantCounters::default());
        let t1 = Arc::new(TenantCounters::default());
        let a1 = Batch::plan(
            gated_ctx(0, Some(t0.clone())),
            (0..4).map(|i| exe(&format!("a{i}"))).collect(),
        );
        let a2 = Batch::plan(
            gated_ctx(0, Some(t0.clone())),
            (4..8).map(|i| exe(&format!("a{i}"))).collect(),
        );
        let b = Batch::plan(
            gated_ctx(1, Some(t1.clone())),
            (0..4).map(|i| exe(&format!("b{i}"))).collect(),
        );
        pool.enqueue(a1.clone());
        pool.enqueue(a2.clone());
        pool.enqueue(b.clone());
        {
            let (open, cv) = &*gate;
            *open.lock().unwrap() = true;
            cv.notify_all();
        }
        BatchTicket::new(a1, pool.clone()).wait();
        BatchTicket::new(a2, pool.clone()).wait();
        BatchTicket::new(b, pool.clone()).wait();
        let order = order.lock().unwrap();
        let pos = |name: &str| order.iter().position(|n| n == name).unwrap();
        // Every lane-1 trial ran before lane 0's second batch.
        for bi in 0..4 {
            assert!(
                pos(&format!("b{bi}")) < pos("a4"),
                "lane 1 was starved: order {order:?}"
            );
        }
        // Per-tenant counters saw exactly their own lane's work.
        assert_eq!(t0.trials.load(Ordering::Relaxed), 8);
        assert_eq!(t0.batches.load(Ordering::Relaxed), 2);
        assert_eq!(t1.trials.load(Ordering::Relaxed), 4);
        assert_eq!(t1.batches.load(Ordering::Relaxed), 1);
    }
}
