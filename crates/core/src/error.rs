use simtune_isa::SimError;
use simtune_predict::PredictError;
use simtune_tensor::{CodegenError, ScheduleError};
use std::error::Error;
use std::fmt;

/// Unified error type of the autotuning/prediction pipeline.
#[derive(Debug)]
pub enum CoreError {
    /// A schedule failed validation.
    Schedule(ScheduleError),
    /// Building an executable failed.
    Codegen(CodegenError),
    /// A simulation aborted.
    Sim(SimError),
    /// A predictor failed to fit or predict.
    Predict(PredictError),
    /// The pipeline was used inconsistently.
    Pipeline(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Schedule(e) => write!(f, "schedule error: {e}"),
            CoreError::Codegen(e) => write!(f, "codegen error: {e}"),
            CoreError::Sim(e) => write!(f, "simulation error: {e}"),
            CoreError::Predict(e) => write!(f, "predictor error: {e}"),
            CoreError::Pipeline(msg) => write!(f, "pipeline error: {msg}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Schedule(e) => Some(e),
            CoreError::Codegen(e) => Some(e),
            CoreError::Sim(e) => Some(e),
            CoreError::Predict(e) => Some(e),
            CoreError::Pipeline(_) => None,
        }
    }
}

impl From<ScheduleError> for CoreError {
    fn from(e: ScheduleError) -> Self {
        CoreError::Schedule(e)
    }
}

impl From<CodegenError> for CoreError {
    fn from(e: CodegenError) -> Self {
        CoreError::Codegen(e)
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<PredictError> for CoreError {
    fn from(e: PredictError) -> Self {
        CoreError::Predict(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = CoreError::Pipeline("no groups".into());
        assert!(e.to_string().contains("no groups"));
        let e: CoreError = SimError::PcOutOfRange { pc: 3 }.into();
        assert!(e.to_string().contains("simulation"));
    }
}
