use crate::backend::BackendError;
use simtune_isa::SimError;
use simtune_predict::PredictError;
use simtune_tensor::{CodegenError, ScheduleError};
use std::error::Error;
use std::fmt;

/// Unified error type of the autotuning/prediction pipeline.
///
/// Marked `#[non_exhaustive]`: the pipeline keeps growing (backends,
/// registries, remote runners), so downstream matches must carry a
/// wildcard arm.
///
/// `Clone` because the simulator is deterministic: when the worker pool
/// deduplicates identical in-flight candidates, a failed leader's error
/// is replayed verbatim to its followers — exactly what re-executing
/// them would have produced.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum CoreError {
    /// A schedule failed validation.
    Schedule(ScheduleError),
    /// Building an executable failed.
    Codegen(CodegenError),
    /// A simulation aborted.
    Sim(SimError),
    /// A predictor failed to fit or predict.
    Predict(PredictError),
    /// A name collision or unresolved name in a backend/function
    /// registry.
    Registry {
        /// The conflicting (or missing) registration name.
        name: String,
    },
    /// A simulator backend was misconfigured.
    Backend {
        /// Which backend rejected its configuration.
        backend: String,
        /// What was wrong.
        message: String,
    },
    /// The pipeline was used inconsistently.
    Pipeline(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Schedule(e) => write!(f, "schedule error: {e}"),
            CoreError::Codegen(e) => write!(f, "codegen error: {e}"),
            CoreError::Sim(e) => write!(f, "simulation error: {e}"),
            CoreError::Predict(e) => write!(f, "predictor error: {e}"),
            CoreError::Registry { name } => {
                write!(f, "registry error: conflicting or unknown name {name:?}")
            }
            CoreError::Backend { backend, message } => {
                write!(f, "backend {backend:?} misconfigured: {message}")
            }
            CoreError::Pipeline(msg) => write!(f, "pipeline error: {msg}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Schedule(e) => Some(e),
            CoreError::Codegen(e) => Some(e),
            CoreError::Sim(e) => Some(e),
            CoreError::Predict(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScheduleError> for CoreError {
    fn from(e: ScheduleError) -> Self {
        CoreError::Schedule(e)
    }
}

impl From<CodegenError> for CoreError {
    fn from(e: CodegenError) -> Self {
        CoreError::Codegen(e)
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<PredictError> for CoreError {
    fn from(e: PredictError) -> Self {
        CoreError::Predict(e)
    }
}

impl From<BackendError> for CoreError {
    fn from(e: BackendError) -> Self {
        match e {
            BackendError::Sim(s) => CoreError::Sim(s),
            BackendError::Config { backend, message } => CoreError::Backend { backend, message },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = CoreError::Pipeline("no groups".into());
        assert!(e.to_string().contains("no groups"));
        let e: CoreError = SimError::PcOutOfRange { pc: 3 }.into();
        assert!(e.to_string().contains("simulation"));
        let e = CoreError::Registry {
            name: "accurate".into(),
        };
        assert!(e.to_string().contains("accurate"));
        let e = CoreError::Backend {
            backend: "sampled".into(),
            message: "fraction 2".into(),
        };
        assert!(e.to_string().contains("sampled") && e.to_string().contains("fraction 2"));
    }
}
