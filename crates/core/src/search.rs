//! Pluggable search strategies for the tuning loops.
//!
//! The paper's Contribution I makes *running* a candidate cheap: any
//! simulator plugs in behind [`crate::SimBackend`], decoded programs
//! replay without re-parsing, and the [`crate::SimCache`] answers
//! revisits from memory. What it leaves open is *which* candidate to
//! simulate next. Pac-Sim and CAPSim (see PAPERS.md) both observe that
//! candidate selection matters as much as per-run speed once runs are
//! cheap — this module closes that gap.
//!
//! The design splits the problem in two:
//!
//! * a [`SearchSpace`] describes *where* search happens — sampling,
//!   mutation, crossover and (when finite) enumeration over one
//!   candidate representation. Two spaces ship in-tree:
//!   [`SketchSpace`] over Auto-Scheduler-style sketch genotypes
//!   ([`SketchParams`]) and [`TemplateSpace`] over AutoTVM-style
//!   template configurations ([`ConfigSpace`] index vectors);
//! * a [`SearchStrategy`] decides *how* to walk a space —
//!   [`propose`](SearchStrategy::propose) hands the tuning loop the next
//!   batch, [`observe`](SearchStrategy::observe) feeds scores back.
//!   Five strategies ship in-tree, every one generic over the space it
//!   walks and deterministic under a seed (the vendored `rand` stub's
//!   [`StdRng`] is a fixed algorithm, so identical seeds replay
//!   identical searches on every host):
//!
//! | strategy | walk | pick when |
//! |---|---|---|
//! | [`RandomSearch`] | uniform samples, no repeats | baseline; training-data collection |
//! | [`GridSearch`] | exhaustive enumeration in index order | small template spaces, ablations |
//! | [`HillClimb`] | mutate the incumbent, random restarts | cheap local refinement |
//! | [`Evolutionary`] | tournament selection + crossover/mutation | broad spaces with structure |
//! | [`Annealing`] | single-point Metropolis walk | escaping local minima on a budget |
//!
//! The tuning loops ([`crate::tune_with_predictor`],
//! [`crate::tune_with_fidelity_escalation`], [`crate::tune_on_hardware`],
//! [`crate::tune_template_space`]) take their strategy from
//! [`crate::TuneOptions::strategy`] as a [`StrategySpec`], so every
//! strategy composes with the memo cache, the batch executor and all
//! three bundled backends without further wiring. Convergence counters
//! are surfaced per run as [`ConvergenceStats`] on
//! [`crate::TuneResult`].
//!
//! # Example
//!
//! Strategies can be driven directly, outside any tuning loop:
//!
//! ```
//! use simtune_core::{Evaluation, RandomSearch, SearchStrategy, TemplateSpace};
//! use simtune_tensor::{matmul, ConfigSpace, TargetIsa};
//!
//! let def = matmul(16, 16, 16);
//! let space = ConfigSpace::matmul(&def, &TargetIsa::riscv_u74());
//! let mut strategy = RandomSearch::new(TemplateSpace::new(space.clone()), 7);
//!
//! let batch = strategy.propose(&[], 4);
//! assert_eq!(batch.len(), 4);
//! let results: Vec<Evaluation<Vec<usize>>> = batch
//!     .into_iter()
//!     .map(|cfg| {
//!         let score = space.index_of(&cfg) as f64; // any objective
//!         Evaluation { point: cfg, score }
//!     })
//!     .collect();
//! strategy.observe(&results);
//! assert_eq!(strategy.convergence().observed, 4);
//! ```

use crate::metrics::ConvergenceStats;
use crate::CoreError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simtune_tensor::{ConfigSpace, SketchGenerator, SketchParams, SketchPattern};
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// One scored candidate of a search history: the point the strategy
/// proposed and the score the tuning loop assigned it (lower = better;
/// failed builds and failed simulations carry `f64::INFINITY`).
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation<P> {
    /// The candidate.
    pub point: P,
    /// Its score (lower = better, `INFINITY` = failed).
    pub score: f64,
}

/// A candidate space a [`SearchStrategy`] can walk.
///
/// The space owns the candidate representation: how to draw a uniform
/// sample, how to perturb a point into a neighbor, how to recombine two
/// points, and — when the space is finite — how to enumerate it.
/// Randomness always flows through the caller-provided [`StdRng`], so a
/// strategy seeded identically replays the identical walk.
pub trait SearchSpace {
    /// The candidate representation.
    type Point: Clone + Send;

    /// Draws a uniformly random candidate.
    fn sample(&self, rng: &mut StdRng) -> Self::Point;

    /// Perturbs one aspect of a candidate (the local-search neighborhood).
    fn mutate(&self, p: &Self::Point, rng: &mut StdRng) -> Self::Point;

    /// Recombines two candidates gene-wise.
    fn crossover(&self, a: &Self::Point, b: &Self::Point, rng: &mut StdRng) -> Self::Point;

    /// A canonical deduplication key (two equal points share a key).
    fn key(&self, p: &Self::Point) -> String;

    /// Number of distinct candidates, when enumerable.
    fn size(&self) -> Option<usize>;

    /// The `index`-th candidate of an enumerable space, `None` past the
    /// end. Enumeration may visit equivalent points more than once
    /// (canonicalization can fold lattice corners together); strategies
    /// deduplicate via [`SearchSpace::key`].
    fn nth(&self, index: usize) -> Option<Self::Point>;

    /// True when `p` is a member of this space.
    fn contains(&self, p: &Self::Point) -> bool;
}

/// The Auto-Scheduler-style sketch-genotype space: candidates are
/// [`SketchParams`] drawn, mutated and crossed over by a
/// [`SketchGenerator`]. Enumeration walks the genotype lattice (tile
/// divisors × interleaving patterns × annotation flags) and projects
/// each corner through [`SketchGenerator::canonicalize`].
#[derive(Debug, Clone)]
pub struct SketchSpace {
    generator: SketchGenerator,
    spatial_divisors: Vec<Vec<usize>>,
    reduce_divisors: Vec<Vec<usize>>,
}

impl SketchSpace {
    /// Wraps a sketch generator as a searchable space.
    pub fn new(generator: SketchGenerator) -> Self {
        let divisors = |extents: &[usize], cap: usize| -> Vec<Vec<usize>> {
            extents
                .iter()
                .map(|&e| {
                    (1..=e.min(cap))
                        .filter(|d| e.is_multiple_of(*d))
                        .collect::<Vec<_>>()
                })
                .collect()
        };
        let spatial_divisors = divisors(
            generator.spatial_extents(),
            generator.rules().max_spatial_tile,
        );
        let reduce_divisors = divisors(
            generator.reduce_extents(),
            generator.rules().max_reduce_tile,
        );
        SketchSpace {
            generator,
            spatial_divisors,
            reduce_divisors,
        }
    }

    /// The wrapped generator.
    pub fn generator(&self) -> &SketchGenerator {
        &self.generator
    }
}

impl SearchSpace for SketchSpace {
    type Point = SketchParams;

    fn sample(&self, rng: &mut StdRng) -> SketchParams {
        self.generator.random(rng)
    }

    fn mutate(&self, p: &SketchParams, rng: &mut StdRng) -> SketchParams {
        self.generator.mutate(p, rng)
    }

    fn crossover(&self, a: &SketchParams, b: &SketchParams, rng: &mut StdRng) -> SketchParams {
        self.generator.crossover(a, b, rng)
    }

    fn key(&self, p: &SketchParams) -> String {
        format!("{p:?}")
    }

    fn size(&self) -> Option<usize> {
        let tiles: usize = self
            .spatial_divisors
            .iter()
            .chain(&self.reduce_divisors)
            .map(Vec::len)
            .product();
        // 3 interleaving patterns × vectorize × unroll_reduce ×
        // unroll_spatial.
        Some(tiles * SketchPattern::all().len() * 8)
    }

    fn nth(&self, index: usize) -> Option<SketchParams> {
        if index >= self.size().expect("sketch spaces are finite") {
            return None;
        }
        // Mixed-radix decode, first radix fastest-varying (matching
        // `ConfigSpace::config_from_index`).
        let mut rem = index;
        let mut digit = |radix: usize| {
            let d = rem % radix;
            rem /= radix;
            d
        };
        let spatial_tiles: Vec<usize> = self
            .spatial_divisors
            .iter()
            .map(|divs| divs[digit(divs.len())])
            .collect();
        let reduce_tiles: Vec<usize> = self
            .reduce_divisors
            .iter()
            .map(|divs| divs[digit(divs.len())])
            .collect();
        let pattern = SketchPattern::all()[digit(SketchPattern::all().len())];
        let mut p = SketchParams {
            spatial_tiles,
            reduce_tiles,
            pattern,
            vectorize: digit(2) == 1,
            unroll_reduce: digit(2) == 1,
            unroll_spatial: digit(2) == 1,
        };
        self.generator.canonicalize(&mut p);
        Some(p)
    }

    fn contains(&self, p: &SketchParams) -> bool {
        self.generator.contains(p)
    }
}

/// The AutoTVM-style template space: candidates are one choice index per
/// knob of a finite [`ConfigSpace`].
#[derive(Debug, Clone)]
pub struct TemplateSpace {
    space: ConfigSpace,
}

impl TemplateSpace {
    /// Wraps a template configuration space as a searchable space.
    pub fn new(space: ConfigSpace) -> Self {
        TemplateSpace { space }
    }

    /// The wrapped configuration space.
    pub fn config_space(&self) -> &ConfigSpace {
        &self.space
    }
}

impl SearchSpace for TemplateSpace {
    type Point = Vec<usize>;

    fn sample(&self, rng: &mut StdRng) -> Vec<usize> {
        self.space.sample(rng)
    }

    fn mutate(&self, p: &Vec<usize>, rng: &mut StdRng) -> Vec<usize> {
        self.space.mutate(p, rng)
    }

    fn crossover(&self, a: &Vec<usize>, b: &Vec<usize>, rng: &mut StdRng) -> Vec<usize> {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| if rng.gen_bool(0.5) { x } else { y })
            .collect()
    }

    fn key(&self, p: &Vec<usize>) -> String {
        format!("{p:?}")
    }

    fn size(&self) -> Option<usize> {
        Some(self.space.len())
    }

    fn nth(&self, index: usize) -> Option<Vec<usize>> {
        (index < self.space.len()).then(|| self.space.config_from_index(index))
    }

    fn contains(&self, p: &Vec<usize>) -> bool {
        p.len() == self.space.knobs().len()
            && p.iter()
                .zip(self.space.knobs())
                .all(|(&c, k)| c < k.choices.len())
    }
}

/// A candidate-selection policy over one [`SearchSpace`].
///
/// The tuning loop drives the strategy batch-wise:
/// [`propose`](SearchStrategy::propose) returns up to `n` fresh
/// candidates given everything evaluated so far, the loop builds and
/// simulates them, and [`observe`](SearchStrategy::observe) feeds the
/// scores back before the next round. A strategy may return fewer than
/// `n` candidates (and eventually none) when its space is exhausted.
///
/// All bundled strategies are deterministic: the same seed and the same
/// observation sequence reproduce the same proposal sequence.
pub trait SearchStrategy<P>: Send {
    /// Proposes up to `n` candidates for the next batch. `history` holds
    /// every evaluation of the running session in evaluation order;
    /// stateful strategies may ignore it and rely on
    /// [`observe`](SearchStrategy::observe) instead.
    fn propose(&mut self, history: &[Evaluation<P>], n: usize) -> Vec<P>;

    /// Feeds back the scored batch (failed candidates carry
    /// `f64::INFINITY`).
    fn observe(&mut self, results: &[Evaluation<P>]);

    /// Strategy label for reports and metrics.
    fn name(&self) -> &'static str;

    /// Convergence counters accumulated so far.
    fn convergence(&self) -> ConvergenceStats;

    /// True when [`propose`](SearchStrategy::propose) never depends on
    /// scores — neither on its `history` argument's scores nor on
    /// anything [`observe`](SearchStrategy::observe) feeds back. The
    /// pipelined tuning loops then propose and build batch *k+1* while
    /// batch *k* still simulates, hiding build latency entirely,
    /// *without changing the visit order*: overlap is only taken where
    /// it provably cannot alter the search.
    ///
    /// Guided strategies (hill climbing, evolutionary, annealing) must
    /// keep the default `false`: their next batch depends on the last
    /// batch's scores, so the loop falls back to strict
    /// propose → simulate → observe sequencing for them.
    fn pipeline_safe(&self) -> bool {
        false
    }
}

/// Shared bookkeeping for the bundled strategies.
#[derive(Debug, Clone, Default)]
struct Tracker {
    stats: ConvergenceStats,
}

impl Tracker {
    fn proposed(&mut self, n: usize) {
        self.stats.proposed += n as u64;
    }

    fn observe<P>(&mut self, results: &[Evaluation<P>]) {
        for r in results {
            self.stats.observed += 1;
            if r.score < self.stats.best_score {
                self.stats.best_score = r.score;
                self.stats.improvements += 1;
                self.stats.trials_to_best = self.stats.observed;
            }
        }
    }
}

/// Uniform random search without replacement — the strategy every tuning
/// loop used before this subsystem existed, extracted verbatim so the
/// default behavior is bit-identical under the old defaults.
#[derive(Debug)]
pub struct RandomSearch<S: SearchSpace> {
    space: S,
    rng: StdRng,
    seen: HashSet<String>,
    attempts_factor: usize,
    total_attempts: usize,
    tracker: Tracker,
}

impl<S: SearchSpace> RandomSearch<S> {
    /// Creates a random search over `space`.
    pub fn new(space: S, seed: u64) -> Self {
        RandomSearch {
            space,
            rng: StdRng::seed_from_u64(seed),
            seen: HashSet::new(),
            attempts_factor: 50,
            total_attempts: 0,
            tracker: Tracker::default(),
        }
    }

    /// Overrides how many samples per requested candidate are drawn
    /// before a batch is cut short (deduplication can reject draws; the
    /// default of 50 matches the historical sketch-tuning loop).
    pub fn with_attempts_factor(mut self, factor: usize) -> Self {
        self.attempts_factor = factor;
        self
    }

    /// Raw samples drawn over the strategy's lifetime, including draws
    /// rejected by deduplication. Callers with a global sampling budget
    /// (e.g. [`crate::collect_group_data`]'s
    /// `n_impls * max_attempts_factor` give-up bound) check this between
    /// batches.
    pub fn attempts(&self) -> usize {
        self.total_attempts
    }
}

impl<S: SearchSpace> SearchStrategy<S::Point> for RandomSearch<S>
where
    S: Send,
{
    fn propose(&mut self, _history: &[Evaluation<S::Point>], n: usize) -> Vec<S::Point> {
        let mut out = Vec::with_capacity(n);
        let mut attempts = 0;
        let total = self.space.size();
        while out.len() < n
            && attempts < n * self.attempts_factor
            && total.is_none_or(|t| self.seen.len() < t)
        {
            attempts += 1;
            let p = self.space.sample(&mut self.rng);
            if self.seen.insert(self.space.key(&p)) {
                out.push(p);
            }
        }
        self.total_attempts += attempts;
        self.tracker.proposed(out.len());
        out
    }

    fn observe(&mut self, results: &[Evaluation<S::Point>]) {
        self.tracker.observe(results);
    }

    fn name(&self) -> &'static str {
        "random"
    }

    fn convergence(&self) -> ConvergenceStats {
        self.tracker.stats
    }

    // Sampling depends only on the seed and the seen-set, never on
    // scores — the proposal stream is fixed at construction.
    fn pipeline_safe(&self) -> bool {
        true
    }
}

/// Exhaustive enumeration in index order — feasible for template spaces
/// and small sketch spaces, and the only strategy with a coverage
/// guarantee: given enough trials it visits every distinct candidate
/// exactly once.
#[derive(Debug)]
pub struct GridSearch<S: SearchSpace> {
    space: S,
    cursor: usize,
    seen: HashSet<String>,
    tracker: Tracker,
}

impl<S: SearchSpace> GridSearch<S> {
    /// Creates a grid search over `space`.
    ///
    /// # Panics
    ///
    /// Panics when the space is not enumerable ([`SearchSpace::size`]
    /// returns `None`).
    pub fn new(space: S) -> Self {
        assert!(
            space.size().is_some(),
            "grid search needs an enumerable space"
        );
        GridSearch {
            space,
            cursor: 0,
            seen: HashSet::new(),
            tracker: Tracker::default(),
        }
    }
}

impl<S: SearchSpace> SearchStrategy<S::Point> for GridSearch<S>
where
    S: Send,
{
    fn propose(&mut self, _history: &[Evaluation<S::Point>], n: usize) -> Vec<S::Point> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let Some(p) = self.space.nth(self.cursor) else {
                break; // space exhausted
            };
            self.cursor += 1;
            if self.seen.insert(self.space.key(&p)) {
                out.push(p);
            }
        }
        self.tracker.proposed(out.len());
        out
    }

    fn observe(&mut self, results: &[Evaluation<S::Point>]) {
        self.tracker.observe(results);
    }

    fn name(&self) -> &'static str {
        "grid"
    }

    fn convergence(&self) -> ConvergenceStats {
        self.tracker.stats
    }

    // Enumeration order is fixed up front; scores never steer it.
    fn pipeline_safe(&self) -> bool {
        true
    }
}

/// Mutate-the-best local search with random restarts: proposals are
/// mutations of the incumbent; when a configurable number of batches
/// passes without improvement the incumbent is abandoned and search
/// restarts from fresh uniform samples (counted in
/// [`ConvergenceStats::restarts`]).
#[derive(Debug)]
pub struct HillClimb<S: SearchSpace> {
    space: S,
    rng: StdRng,
    seen: HashSet<String>,
    incumbent: Option<(S::Point, f64)>,
    stalled_batches: usize,
    /// Batches without improvement before a random restart (default 3).
    pub restart_after: usize,
    attempts_factor: usize,
    tracker: Tracker,
}

impl<S: SearchSpace> HillClimb<S> {
    /// Creates a hill climber over `space`.
    pub fn new(space: S, seed: u64) -> Self {
        HillClimb {
            space,
            rng: StdRng::seed_from_u64(seed),
            seen: HashSet::new(),
            incumbent: None,
            stalled_batches: 0,
            restart_after: 3,
            attempts_factor: 60,
            tracker: Tracker::default(),
        }
    }
}

impl<S: SearchSpace> SearchStrategy<S::Point> for HillClimb<S>
where
    S: Send,
{
    fn propose(&mut self, _history: &[Evaluation<S::Point>], n: usize) -> Vec<S::Point> {
        let mut out = Vec::with_capacity(n);
        let cap = n * self.attempts_factor;
        let mut attempts = 0;
        // Neighborhood walk around the incumbent (or uniform samples
        // while no incumbent exists yet).
        while out.len() < n && attempts < cap {
            attempts += 1;
            let candidate = match &self.incumbent {
                Some((best, _)) => self.space.mutate(best, &mut self.rng),
                None => self.space.sample(&mut self.rng),
            };
            if self.seen.insert(self.space.key(&candidate)) {
                out.push(candidate);
            }
        }
        // Neighborhood exhausted: top up with fresh uniform samples so a
        // depleted local region cannot stall the whole session.
        while out.len() < n && attempts < 2 * cap {
            attempts += 1;
            let candidate = self.space.sample(&mut self.rng);
            if self.seen.insert(self.space.key(&candidate)) {
                out.push(candidate);
            }
        }
        self.tracker.proposed(out.len());
        out
    }

    fn observe(&mut self, results: &[Evaluation<S::Point>]) {
        self.tracker.observe(results);
        let mut improved = false;
        for r in results {
            if !r.score.is_finite() {
                continue;
            }
            match &self.incumbent {
                Some((_, best)) if r.score >= *best => {}
                _ => {
                    self.incumbent = Some((r.point.clone(), r.score));
                    improved = true;
                }
            }
        }
        if improved {
            self.stalled_batches = 0;
        } else {
            self.stalled_batches += 1;
            if self.stalled_batches >= self.restart_after {
                self.incumbent = None;
                self.stalled_batches = 0;
                self.tracker.stats.restarts += 1;
            }
        }
    }

    fn name(&self) -> &'static str {
        "hill_climb"
    }

    fn convergence(&self) -> ConvergenceStats {
        self.tracker.stats
    }
}

/// Evolutionary search (the Auto-Scheduler's strategy): a retained
/// population of the best candidates produces new batches by binary
/// tournament selection, gene-wise crossover and mutation, with a
/// random-immigrant fraction for exploration.
#[derive(Debug)]
pub struct Evolutionary<S: SearchSpace> {
    space: S,
    rng: StdRng,
    population: Vec<(S::Point, f64)>,
    /// Maximum retained population (default 32).
    pub population_size: usize,
    /// Fraction of each batch drawn uniformly at random (default 0.25).
    pub immigrant_fraction: f64,
    seen: HashSet<String>,
    attempts_factor: usize,
    tracker: Tracker,
}

impl<S: SearchSpace> Evolutionary<S> {
    /// Creates an evolutionary search with a population of 32 and a 25 %
    /// immigrant fraction.
    pub fn new(space: S, seed: u64) -> Self {
        Evolutionary {
            space,
            rng: StdRng::seed_from_u64(seed),
            population: Vec::new(),
            population_size: 32,
            immigrant_fraction: 0.25,
            seen: HashSet::new(),
            attempts_factor: 60,
            tracker: Tracker::default(),
        }
    }

    /// Binary tournament over the current population.
    fn tournament(&mut self) -> S::Point {
        let n = self.population.len();
        let a = self.rng.gen_range(0..n);
        let b = self.rng.gen_range(0..n);
        let winner = if self.population[a].1 <= self.population[b].1 {
            a
        } else {
            b
        };
        self.population[winner].0.clone()
    }
}

impl<S: SearchSpace> SearchStrategy<S::Point> for Evolutionary<S>
where
    S: Send,
{
    fn propose(&mut self, _history: &[Evaluation<S::Point>], n: usize) -> Vec<S::Point> {
        let mut out = Vec::with_capacity(n);
        let mut attempts = 0;
        while out.len() < n && attempts < n * self.attempts_factor {
            attempts += 1;
            let candidate =
                if self.population.len() < 2 || self.rng.gen_bool(self.immigrant_fraction) {
                    self.space.sample(&mut self.rng)
                } else {
                    let a = self.tournament();
                    let b = self.tournament();
                    let child = self.space.crossover(&a, &b, &mut self.rng);
                    self.space.mutate(&child, &mut self.rng)
                };
            if self.seen.insert(self.space.key(&candidate)) {
                out.push(candidate);
            }
        }
        self.tracker.proposed(out.len());
        out
    }

    fn observe(&mut self, results: &[Evaluation<S::Point>]) {
        self.tracker.observe(results);
        for r in results {
            if r.score.is_finite() {
                self.population.push((r.point.clone(), r.score));
            }
        }
        self.population
            .sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"));
        self.population.truncate(self.population_size);
    }

    fn name(&self) -> &'static str {
        "evolutionary"
    }

    fn convergence(&self) -> ConvergenceStats {
        self.tracker.stats
    }
}

/// Simulated annealing (AutoTVM's `sa` tuner family): proposals are
/// mutations of the incumbent, which is replaced by better candidates
/// always and by worse ones with the Metropolis probability under a
/// geometric temperature schedule.
#[derive(Debug)]
pub struct Annealing<S: SearchSpace> {
    space: S,
    rng: StdRng,
    incumbent: Option<(S::Point, f64)>,
    temperature: f64,
    /// Multiplied into the temperature after every observed batch
    /// (default 0.9).
    pub cooling: f64,
    seen: HashSet<String>,
    attempts_factor: usize,
    tracker: Tracker,
}

impl<S: SearchSpace> Annealing<S> {
    /// Creates an annealing search with initial temperature 1.0 and a
    /// 0.9 cooling factor per batch.
    pub fn new(space: S, seed: u64) -> Self {
        Annealing {
            space,
            rng: StdRng::seed_from_u64(seed),
            incumbent: None,
            temperature: 1.0,
            cooling: 0.9,
            seen: HashSet::new(),
            attempts_factor: 100,
            tracker: Tracker::default(),
        }
    }

    /// The current incumbent, when one has been accepted.
    pub fn incumbent(&self) -> Option<(&S::Point, f64)> {
        self.incumbent.as_ref().map(|(p, s)| (p, *s))
    }

    /// The current temperature.
    pub fn temperature(&self) -> f64 {
        self.temperature
    }
}

impl<S: SearchSpace> SearchStrategy<S::Point> for Annealing<S>
where
    S: Send,
{
    fn propose(&mut self, _history: &[Evaluation<S::Point>], n: usize) -> Vec<S::Point> {
        let mut out = Vec::with_capacity(n);
        let mut attempts = 0;
        while out.len() < n && attempts < n * self.attempts_factor {
            attempts += 1;
            let candidate = match &self.incumbent {
                None => self.space.sample(&mut self.rng),
                Some((cfg, _)) => self.space.mutate(cfg, &mut self.rng),
            };
            if self.seen.insert(self.space.key(&candidate)) {
                out.push(candidate);
            }
        }
        self.tracker.proposed(out.len());
        out
    }

    fn observe(&mut self, results: &[Evaluation<S::Point>]) {
        self.tracker.observe(results);
        for r in results {
            if !r.score.is_finite() {
                continue;
            }
            let accept = match &self.incumbent {
                None => true,
                Some((_, best)) => {
                    r.score < *best || {
                        let delta = (r.score - best).max(0.0);
                        let p = (-delta / self.temperature.max(1e-9)).exp();
                        self.rng.gen_bool(p.clamp(0.0, 1.0))
                    }
                }
            };
            if accept {
                self.incumbent = Some((r.point.clone(), r.score));
            }
        }
        self.temperature *= self.cooling;
    }

    fn name(&self) -> &'static str {
        "annealing"
    }

    fn convergence(&self) -> ConvergenceStats {
        self.tracker.stats
    }
}

/// Factory signature for [`StrategySpec::Custom`]: builds a boxed
/// strategy over the sketch space of the kernel being tuned, seeded
/// with [`crate::TuneOptions::seed`].
pub type CustomStrategyFactory =
    dyn Fn(SketchSpace, u64) -> Box<dyn SearchStrategy<SketchParams>> + Send + Sync;

/// Cloneable strategy selection carried by [`crate::TuneOptions`].
///
/// The tuning loops instantiate the concrete strategy from this spec at
/// the start of every run (a strategy is stateful, an options struct is
/// not), so one `TuneOptions` value can drive many independent sessions.
#[derive(Clone, Default)]
pub enum StrategySpec {
    /// [`RandomSearch`] — the pre-subsystem default, bit-identical to the
    /// historical inlined sampling.
    #[default]
    Random,
    /// [`GridSearch`] over the enumerable space.
    Grid,
    /// [`HillClimb`] local search with random restarts.
    HillClimb,
    /// [`Evolutionary`] tournament + crossover/mutation search.
    Evolutionary,
    /// [`Annealing`] Metropolis walk.
    Annealing,
    /// A user-provided factory producing a boxed [`SearchStrategy`] for
    /// sketch tuning (template tuning rejects custom specs — implement
    /// `SearchStrategy<Vec<usize>>` and drive the loop directly instead).
    Custom(Arc<CustomStrategyFactory>),
}

impl fmt::Debug for StrategySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StrategySpec::Random => "Random",
            StrategySpec::Grid => "Grid",
            StrategySpec::HillClimb => "HillClimb",
            StrategySpec::Evolutionary => "Evolutionary",
            StrategySpec::Annealing => "Annealing",
            StrategySpec::Custom(_) => "Custom(..)",
        })
    }
}

impl std::str::FromStr for StrategySpec {
    type Err = CoreError;

    fn from_str(s: &str) -> Result<Self, CoreError> {
        match s.to_ascii_lowercase().as_str() {
            "random" => Ok(StrategySpec::Random),
            "grid" => Ok(StrategySpec::Grid),
            "hill" | "hill-climb" | "hill_climb" => Ok(StrategySpec::HillClimb),
            "evo" | "evolutionary" => Ok(StrategySpec::Evolutionary),
            "sa" | "annealing" => Ok(StrategySpec::Annealing),
            other => Err(CoreError::Pipeline(format!(
                "unknown strategy {other:?} (random|grid|hill|evolutionary|annealing)"
            ))),
        }
    }
}

impl StrategySpec {
    /// Every built-in spec, in documentation order (for sweeps and CLIs).
    pub fn all() -> [StrategySpec; 5] {
        [
            StrategySpec::Random,
            StrategySpec::Grid,
            StrategySpec::HillClimb,
            StrategySpec::Evolutionary,
            StrategySpec::Annealing,
        ]
    }

    /// The label the instantiated strategy will report.
    pub fn label(&self) -> &'static str {
        match self {
            StrategySpec::Random => "random",
            StrategySpec::Grid => "grid",
            StrategySpec::HillClimb => "hill_climb",
            StrategySpec::Evolutionary => "evolutionary",
            StrategySpec::Annealing => "annealing",
            StrategySpec::Custom(_) => "custom",
        }
    }

    /// Instantiates the strategy over a sketch space.
    pub fn build_sketch(
        &self,
        generator: SketchGenerator,
        seed: u64,
    ) -> Box<dyn SearchStrategy<SketchParams>> {
        let space = SketchSpace::new(generator);
        match self {
            StrategySpec::Random => Box::new(RandomSearch::new(space, seed)),
            StrategySpec::Grid => Box::new(GridSearch::new(space)),
            StrategySpec::HillClimb => Box::new(HillClimb::new(space, seed)),
            StrategySpec::Evolutionary => Box::new(Evolutionary::new(space, seed)),
            StrategySpec::Annealing => Box::new(Annealing::new(space, seed)),
            StrategySpec::Custom(factory) => factory(space, seed),
        }
    }

    /// Instantiates the strategy over a template space.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Pipeline`] for [`StrategySpec::Custom`],
    /// whose factory produces sketch strategies.
    pub fn build_template(
        &self,
        space: ConfigSpace,
        seed: u64,
    ) -> Result<Box<dyn SearchStrategy<Vec<usize>>>, CoreError> {
        let space = TemplateSpace::new(space);
        Ok(match self {
            // Factor 100 matches the historical template sampling loop
            // bit-for-bit.
            StrategySpec::Random => {
                Box::new(RandomSearch::new(space, seed).with_attempts_factor(100))
            }
            StrategySpec::Grid => Box::new(GridSearch::new(space)),
            StrategySpec::HillClimb => Box::new(HillClimb::new(space, seed)),
            StrategySpec::Evolutionary => Box::new(Evolutionary::new(space, seed)),
            StrategySpec::Annealing => Box::new(Annealing::new(space, seed)),
            StrategySpec::Custom(_) => {
                return Err(CoreError::Pipeline(
                    "custom strategy factories build sketch strategies; implement \
                     SearchStrategy<Vec<usize>> and drive tune_template_space's loop directly"
                        .into(),
                ))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtune_tensor::{matmul, TargetIsa};

    fn sketch_space() -> SketchSpace {
        let def = matmul(8, 8, 8);
        SketchSpace::new(SketchGenerator::new(&def, TargetIsa::riscv_u74()))
    }

    fn template_space() -> TemplateSpace {
        let def = matmul(8, 8, 8);
        TemplateSpace::new(ConfigSpace::matmul(&def, &TargetIsa::riscv_u74()))
    }

    fn eval<P>(points: Vec<P>, f: impl Fn(&P) -> f64) -> Vec<Evaluation<P>> {
        points
            .into_iter()
            .map(|p| {
                let score = f(&p);
                Evaluation { point: p, score }
            })
            .collect()
    }

    #[test]
    fn random_search_matches_the_legacy_sampling_loop() {
        // The pre-subsystem tuner loop, reproduced verbatim: this is the
        // bit-identical-extraction contract of RandomSearch.
        let space = sketch_space();
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = HashSet::new();
        let mut legacy = Vec::new();
        let n = 10;
        let mut attempts = 0;
        while legacy.len() < 2 * n && attempts < 2 * n * 50 {
            attempts += 1;
            let p = space.generator().random(&mut rng);
            if seen.insert(format!("{p:?}")) {
                legacy.push(p);
            }
        }

        let mut strategy = RandomSearch::new(sketch_space(), 1);
        let mut modern = strategy.propose(&[], n);
        modern.extend(strategy.propose(&[], n));
        assert_eq!(modern, legacy[..modern.len()].to_vec());
        assert_eq!(modern.len(), 2 * n);
    }

    #[test]
    fn random_search_never_repeats_candidates() {
        let mut strategy = RandomSearch::new(template_space(), 3);
        let mut seen = HashSet::new();
        for _ in 0..5 {
            for cfg in strategy.propose(&[], 10) {
                assert!(seen.insert(format!("{cfg:?}")), "duplicate candidate");
            }
        }
    }

    #[test]
    fn random_search_stops_at_space_exhaustion() {
        let space = template_space();
        let total = space.size().unwrap();
        let mut strategy = RandomSearch::new(space, 5);
        let mut count = 0;
        loop {
            let batch = strategy.propose(&[], 64);
            if batch.is_empty() {
                break;
            }
            count += batch.len();
            assert!(count <= total, "proposed more candidates than exist");
        }
        // Random sampling with an attempt cap may stop short, but must
        // cover most of the space before giving up.
        assert!(count > total / 2, "covered only {count}/{total}");
    }

    #[test]
    fn grid_search_enumerates_template_space_in_order_exactly_once() {
        let space = template_space();
        let total = space.size().unwrap();
        let inner = space.config_space().clone();
        let mut strategy = GridSearch::new(space);
        let first = strategy.propose(&[], 5);
        assert_eq!(inner.index_of(&first[0]), 0);
        assert_eq!(inner.index_of(&first[4]), 4);
        let mut count = first.len();
        loop {
            let batch = strategy.propose(&[], 1000);
            if batch.is_empty() {
                break;
            }
            count += batch.len();
        }
        assert_eq!(count, total, "grid must cover the space exactly once");
    }

    #[test]
    fn grid_search_covers_sketch_space_without_duplicates() {
        let space = sketch_space();
        let mut strategy = GridSearch::new(space);
        let mut seen = HashSet::new();
        let mut count = 0;
        loop {
            let batch = strategy.propose(&[], 512);
            if batch.is_empty() {
                break;
            }
            for p in batch {
                assert!(seen.insert(format!("{p:?}")), "duplicate genotype");
                count += 1;
            }
        }
        assert!(count > 100, "sketch grid too small: {count}");
    }

    #[test]
    fn hill_climb_improves_and_restarts() {
        // Objective: distance from config [0, 0, ...] — strictly
        // improvable by single-knob moves, so hill climbing descends.
        let space = template_space();
        let mut strategy = HillClimb::new(space, 7);
        let mut best = f64::INFINITY;
        let mut first_round_best = f64::INFINITY;
        for round in 0..12 {
            let batch = strategy.propose(&[], 8);
            if batch.is_empty() {
                break;
            }
            let results = eval(batch, |cfg| cfg.iter().sum::<usize>() as f64);
            if round == 0 {
                first_round_best = results
                    .iter()
                    .map(|r| r.score)
                    .fold(f64::INFINITY, f64::min);
            }
            best = results.iter().map(|r| r.score).fold(best, f64::min);
            strategy.observe(&results);
        }
        assert!(best <= first_round_best);
        let stats = strategy.convergence();
        assert!(stats.improvements >= 1);
        assert_eq!(stats.best_score, best);
    }

    #[test]
    fn hill_climb_restart_counter_fires_on_stall() {
        let space = template_space();
        let mut strategy = HillClimb::new(space, 2);
        // Constant objective: nothing ever improves after the first
        // batch, so a restart must fire after `restart_after` batches.
        let batch = strategy.propose(&[], 4);
        strategy.observe(&eval(batch, |_| 1.0));
        for _ in 0..strategy.restart_after {
            let batch = strategy.propose(&[], 4);
            strategy.observe(&eval(batch, |_| 1.0));
        }
        assert!(strategy.convergence().restarts >= 1);
    }

    #[test]
    fn evolutionary_population_converges_toward_low_scores() {
        let space = sketch_space();
        let score_fn = |p: &SketchParams| {
            let mut s = 10.0;
            if p.unroll_reduce {
                s -= 3.0;
            }
            s + p.spatial_tiles.iter().sum::<usize>() as f64 * 0.1
        };
        let mut strategy = Evolutionary::new(space, 2);
        let mut best_first = f64::INFINITY;
        let mut best_last = f64::INFINITY;
        for round in 0..8 {
            let batch = strategy.propose(&[], 12);
            if batch.is_empty() {
                break;
            }
            let results = eval(batch, score_fn);
            let round_best = results
                .iter()
                .map(|r| r.score)
                .fold(f64::INFINITY, f64::min);
            if round == 0 {
                best_first = round_best;
            }
            best_last = best_last.min(round_best);
            strategy.observe(&results);
        }
        assert!(best_last <= best_first, "{best_last} vs {best_first}");
    }

    #[test]
    fn annealing_tracks_an_incumbent_and_cools() {
        let space = template_space();
        let inner = space.config_space().clone();
        let mut strategy = Annealing::new(space, 7);
        for _ in 0..10 {
            let batch = strategy.propose(&[], 6);
            if batch.is_empty() {
                break;
            }
            let results = eval(batch, |cfg| inner.index_of(cfg) as f64);
            strategy.observe(&results);
        }
        let (_, best) = strategy.incumbent().expect("has incumbent");
        assert!(best.is_finite());
        assert!(strategy.temperature() < 1.0, "temperature must cool");
    }

    #[test]
    fn strategies_only_propose_points_inside_the_space() {
        let specs = StrategySpec::all();
        for spec in &specs {
            let space = template_space();
            let mut strategy = spec
                .build_template(space.config_space().clone(), 11)
                .unwrap();
            for _ in 0..4 {
                let batch = strategy.propose(&[], 8);
                let results = eval(batch, |cfg| cfg.iter().sum::<usize>() as f64);
                for r in &results {
                    assert!(
                        space.contains(&r.point),
                        "{} proposed {:?} outside the space",
                        strategy.name(),
                        r.point
                    );
                }
                strategy.observe(&results);
            }
        }
    }

    #[test]
    fn sketch_space_nth_stays_in_space() {
        let space = sketch_space();
        let total = space.size().unwrap();
        for i in (0..total).step_by(17) {
            let p = space.nth(i).unwrap();
            assert!(space.contains(&p), "nth({i}) = {p:?} outside space");
        }
        assert!(space.nth(total).is_none());
    }

    #[test]
    fn convergence_counters_are_consistent() {
        let mut strategy = RandomSearch::new(template_space(), 1);
        let batch = strategy.propose(&[], 6);
        let proposed = batch.len() as u64;
        let results = eval(batch, |cfg| cfg.iter().sum::<usize>() as f64);
        strategy.observe(&results);
        let stats = strategy.convergence();
        assert_eq!(stats.proposed, proposed);
        assert_eq!(stats.observed, proposed);
        assert!(stats.improvements >= 1);
        assert!(stats.trials_to_best >= 1 && stats.trials_to_best <= stats.observed);
        let min = results
            .iter()
            .map(|r| r.score)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(stats.best_score, min);
    }

    #[test]
    fn strategy_spec_parses_and_labels() {
        use std::str::FromStr;
        for (text, label) in [
            ("random", "random"),
            ("grid", "grid"),
            ("hill", "hill_climb"),
            ("hill-climb", "hill_climb"),
            ("EVOLUTIONARY", "evolutionary"),
            ("sa", "annealing"),
        ] {
            let spec = StrategySpec::from_str(text).unwrap();
            assert_eq!(spec.label(), label);
            let def = matmul(8, 8, 8);
            let strategy = spec.build_sketch(SketchGenerator::new(&def, TargetIsa::riscv_u74()), 0);
            assert_eq!(strategy.name(), label);
        }
        assert!(StrategySpec::from_str("bogus").is_err());
    }

    #[test]
    fn custom_spec_builds_sketch_but_not_template() {
        let spec = StrategySpec::Custom(Arc::new(|space, seed| {
            Box::new(RandomSearch::new(space, seed))
        }));
        assert_eq!(spec.label(), "custom");
        let def = matmul(8, 8, 8);
        let mut strategy = spec.build_sketch(SketchGenerator::new(&def, TargetIsa::riscv_u74()), 1);
        assert_eq!(strategy.propose(&[], 3).len(), 3);
        let err = spec.build_template(ConfigSpace::matmul(&def, &TargetIsa::riscv_u74()), 1);
        assert!(err.is_err());
    }

    #[test]
    fn same_seed_replays_the_same_walk() {
        for spec in StrategySpec::all() {
            let def = matmul(8, 8, 8);
            let make = || {
                spec.build_template(ConfigSpace::matmul(&def, &TargetIsa::riscv_u74()), 13)
                    .unwrap()
            };
            let (mut a, mut b) = (make(), make());
            for _ in 0..3 {
                let ba = a.propose(&[], 7);
                let bb = b.propose(&[], 7);
                assert_eq!(ba, bb, "{} diverged", a.name());
                let ra = eval(ba, |cfg| cfg.iter().sum::<usize>() as f64);
                a.observe(&ra);
                b.observe(&ra);
            }
        }
    }
}
