//! Feature extraction from instruction-accurate statistics
//! (paper Section III-D).
//!
//! The predictor inputs are, per implementation `I_x` of a group:
//!
//! 1. load/store/branch instruction counts divided by total instructions;
//! 2. per cache level, read/write hits/misses/replacements divided by
//!    read/write accesses of that cache (Eq. 1);
//! 3. every ratio additionally in group-normalized form
//!    `(P(I_x) − mean_P) / mean_P` (Eq. 2);
//! 4. the total instruction count normalized to the group mean.
//!
//! Group means are exact at training time; at inference the
//! Auto-Scheduler produces implementations batch-wise, so means are
//! approximated with *static* or *dynamic* windows (Section III-E).

use simtune_isa::SimStats;
use simtune_linalg::Matrix;

/// Which feature families to include (the full set is the paper's; the
/// subsets exist for the feature-ablation experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureConfig {
    /// Include the instruction-mix ratios.
    pub inst_mix: bool,
    /// Include the per-cache ratios.
    pub cache: bool,
    /// Append the group-normalized variant of every ratio.
    pub normalized: bool,
    /// Append the group-normalized total instruction count.
    pub total_insts: bool,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            inst_mix: true,
            cache: true,
            normalized: true,
            total_insts: true,
        }
    }
}

/// Raw (pre-normalization) feature ratios plus the total instruction
/// count of one implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct RawSample {
    /// Ratio features in a fixed order.
    pub ratios: Vec<f64>,
    /// Total retired instructions.
    pub total_insts: f64,
}

/// Extracts the raw ratio vector from simulator statistics.
pub fn raw_sample(stats: &SimStats, config: &FeatureConfig) -> RawSample {
    let mut ratios = Vec::with_capacity(32);
    if config.inst_mix {
        ratios.push(stats.inst_mix.load_ratio());
        ratios.push(stats.inst_mix.store_ratio());
        ratios.push(stats.inst_mix.branch_ratio());
    }
    if config.cache {
        for (_, level) in stats.cache.levels() {
            ratios.extend_from_slice(&level.ratio_vector());
        }
    }
    RawSample {
        ratios,
        total_insts: stats.inst_mix.total() as f64,
    }
}

/// Human-readable names of the feature columns produced for `has_l3`
/// hierarchies under `config` (diagnostics and reports).
pub fn feature_names(has_l3: bool, config: &FeatureConfig) -> Vec<String> {
    let mut base = Vec::new();
    if config.inst_mix {
        for n in ["load_ratio", "store_ratio", "branch_ratio"] {
            base.push(n.to_string());
        }
    }
    if config.cache {
        let mut levels = vec!["l1d", "l1i", "l2"];
        if has_l3 {
            levels.push("l3");
        }
        for l in levels {
            for m in [
                "rd_hit", "rd_miss", "rd_repl", "wr_hit", "wr_miss", "wr_repl",
            ] {
                base.push(format!("{l}_{m}"));
            }
        }
    }
    let mut names = base.clone();
    if config.normalized {
        names.extend(base.iter().map(|n| format!("{n}_norm")));
    }
    if config.total_insts {
        names.push("total_insts_norm".into());
    }
    names
}

/// Eq. 2 of the paper with a guard for zero means.
fn normalize(value: f64, mean: f64) -> f64 {
    if mean.abs() < 1e-12 {
        0.0
    } else {
        (value - mean) / mean
    }
}

/// Group statistics used for normalization: the mean of each ratio and
/// of the total instruction count.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupMeans {
    /// Mean of each raw ratio.
    pub ratio_means: Vec<f64>,
    /// Mean total instruction count.
    pub insts_mean: f64,
}

impl GroupMeans {
    /// Exact means over a complete group (training time).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn exact(samples: &[RawSample]) -> Self {
        assert!(!samples.is_empty(), "group means need samples");
        let d = samples[0].ratios.len();
        let mut ratio_means = vec![0.0; d];
        let mut insts_mean = 0.0;
        for s in samples {
            for (m, r) in ratio_means.iter_mut().zip(&s.ratios) {
                *m += r;
            }
            insts_mean += s.total_insts;
        }
        let n = samples.len() as f64;
        for m in &mut ratio_means {
            *m /= n;
        }
        GroupMeans {
            ratio_means,
            insts_mean: insts_mean / n,
        }
    }

    /// Final feature vector for one sample under these means.
    pub fn features(&self, sample: &RawSample, config: &FeatureConfig) -> Vec<f64> {
        let mut out = sample.ratios.clone();
        if config.normalized {
            out.extend(
                sample
                    .ratios
                    .iter()
                    .zip(&self.ratio_means)
                    .map(|(&v, &m)| normalize(v, m)),
            );
        }
        if config.total_insts {
            out.push(normalize(sample.total_insts, self.insts_mean));
        }
        out
    }
}

/// Mean-approximation strategy at inference time (Section III-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowKind {
    /// Use exact means of everything fed (training-time behavior).
    Exact,
    /// Freeze means after the first `w` samples.
    Static(usize),
    /// Keep updating means with every sample.
    Dynamic,
}

/// Streaming estimator of group means for batch-wise inference.
///
/// Feed raw samples as the Auto-Scheduler produces them, then ask for
/// feature vectors; the window policy controls how the means evolve.
///
/// # Example
///
/// ```
/// use simtune_core::{RawSample, WindowKind, WindowNormalizer};
///
/// let mut w = WindowNormalizer::new(WindowKind::Static(2));
/// for v in [1.0, 3.0, 100.0] {
///     w.feed(&RawSample { ratios: vec![v], total_insts: 1.0 });
/// }
/// // Means froze at (1+3)/2 = 2 before the outlier arrived.
/// assert_eq!(w.means().unwrap().ratio_means[0], 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct WindowNormalizer {
    kind: WindowKind,
    count: usize,
    ratio_sums: Vec<f64>,
    insts_sum: f64,
    frozen: Option<GroupMeans>,
}

impl WindowNormalizer {
    /// Creates an empty estimator.
    pub fn new(kind: WindowKind) -> Self {
        WindowNormalizer {
            kind,
            count: 0,
            ratio_sums: Vec::new(),
            insts_sum: 0.0,
            frozen: None,
        }
    }

    /// Number of samples fed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one raw sample.
    pub fn feed(&mut self, sample: &RawSample) {
        if let WindowKind::Static(w) = self.kind {
            if self.frozen.is_some() {
                return; // means already frozen
            }
            self.accumulate(sample);
            if self.count >= w {
                self.frozen = Some(self.current_means().expect("count > 0"));
            }
            return;
        }
        self.accumulate(sample);
    }

    fn accumulate(&mut self, sample: &RawSample) {
        if self.ratio_sums.is_empty() {
            self.ratio_sums = vec![0.0; sample.ratios.len()];
        }
        for (s, r) in self.ratio_sums.iter_mut().zip(&sample.ratios) {
            *s += r;
        }
        self.insts_sum += sample.total_insts;
        self.count += 1;
    }

    fn current_means(&self) -> Option<GroupMeans> {
        if self.count == 0 {
            return None;
        }
        let n = self.count as f64;
        Some(GroupMeans {
            ratio_means: self.ratio_sums.iter().map(|s| s / n).collect(),
            insts_mean: self.insts_sum / n,
        })
    }

    /// The means currently in effect (frozen for saturated static
    /// windows, running otherwise). `None` before any sample.
    pub fn means(&self) -> Option<GroupMeans> {
        match (&self.kind, &self.frozen) {
            (WindowKind::Static(_), Some(m)) => Some(m.clone()),
            _ => self.current_means(),
        }
    }

    /// Feature vector for `sample` under the current means.
    ///
    /// # Panics
    ///
    /// Panics if no sample has been fed yet.
    pub fn features(&self, sample: &RawSample, config: &FeatureConfig) -> Vec<f64> {
        self.means()
            .expect("feed at least one sample before extracting features")
            .features(sample, config)
    }
}

/// Builds the training feature matrix and normalized labels for one
/// group with exact means: returns `(X, y)` where
/// `y = (t_ref − mean_t) / mean_t` (the paper's training scores).
///
/// # Panics
///
/// Panics if inputs are empty or lengths differ.
pub fn group_training_data(
    stats: &[SimStats],
    t_ref: &[f64],
    config: &FeatureConfig,
) -> (Matrix, Vec<f64>) {
    assert_eq!(stats.len(), t_ref.len(), "stats vs labels");
    assert!(!stats.is_empty(), "empty group");
    let raws: Vec<RawSample> = stats.iter().map(|s| raw_sample(s, config)).collect();
    let means = GroupMeans::exact(&raws);
    let rows: Vec<Vec<f64>> = raws.iter().map(|r| means.features(r, config)).collect();
    let x = Matrix::from_rows(&rows).expect("consistent feature rows");
    let t_mean = t_ref.iter().sum::<f64>() / t_ref.len() as f64;
    let y = t_ref.iter().map(|&t| normalize(t, t_mean)).collect();
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtune_cache::{CacheStats, HierarchyStats};
    use simtune_isa::InstMix;

    fn stats(loads: u64, hits: u64, misses: u64) -> SimStats {
        SimStats {
            inst_mix: InstMix {
                loads,
                stores: loads / 2,
                branches: loads / 4,
                int_alu: loads * 2,
                ..Default::default()
            },
            cache: HierarchyStats {
                l1d: CacheStats {
                    read_hits: hits,
                    read_misses: misses,
                    ..Default::default()
                },
                ..Default::default()
            },
            host_nanos: 0,
        }
    }

    #[test]
    fn raw_sample_layout_matches_names() {
        let cfg = FeatureConfig::default();
        let s = stats(100, 90, 10);
        let raw = raw_sample(&s, &cfg);
        // 3 inst ratios + 3 levels x 6 cache ratios (no L3 here).
        assert_eq!(raw.ratios.len(), 3 + 18);
        let names = feature_names(false, &cfg);
        // ratios + normalized ratios + total.
        assert_eq!(names.len(), 21 * 2 + 1);
        assert_eq!(names[0], "load_ratio");
        assert!(names.last().unwrap().contains("total_insts"));
    }

    #[test]
    fn l3_extends_the_vector() {
        let cfg = FeatureConfig::default();
        let mut s = stats(10, 5, 5);
        s.cache.l3 = Some(CacheStats::default());
        assert_eq!(raw_sample(&s, &cfg).ratios.len(), 3 + 24);
        assert_eq!(feature_names(true, &cfg).len(), 27 * 2 + 1);
    }

    #[test]
    fn ablation_configs_shrink_the_vector() {
        let cache_only = FeatureConfig {
            inst_mix: false,
            ..Default::default()
        };
        let s = stats(10, 5, 5);
        assert_eq!(raw_sample(&s, &cache_only).ratios.len(), 18);
        let raw_only = FeatureConfig {
            normalized: false,
            total_insts: false,
            ..Default::default()
        };
        let raw = raw_sample(&s, &raw_only);
        let means = GroupMeans::exact(std::slice::from_ref(&raw));
        assert_eq!(means.features(&raw, &raw_only).len(), 21);
    }

    #[test]
    fn eq2_normalization_properties() {
        // Sample equal to the mean maps to 0; double the mean maps to 1.
        let samples = vec![
            RawSample {
                ratios: vec![0.2],
                total_insts: 100.0,
            },
            RawSample {
                ratios: vec![0.4],
                total_insts: 300.0,
            },
        ];
        let cfg = FeatureConfig {
            inst_mix: true,
            cache: false,
            normalized: true,
            total_insts: true,
        };
        let means = GroupMeans::exact(&samples);
        assert!((means.ratio_means[0] - 0.3).abs() < 1e-12);
        let f = means.features(
            &RawSample {
                ratios: vec![0.6],
                total_insts: 200.0,
            },
            &cfg,
        );
        // [raw, normalized, insts_norm]
        assert_eq!(f.len(), 3);
        assert!((f[1] - 1.0).abs() < 1e-12); // (0.6-0.3)/0.3
        assert!((f[2] - 0.0).abs() < 1e-12); // 200 == mean(100,300)
    }

    #[test]
    fn zero_mean_guard() {
        let samples = vec![RawSample {
            ratios: vec![0.0],
            total_insts: 0.0,
        }];
        let means = GroupMeans::exact(&samples);
        let f = means.features(&samples[0], &FeatureConfig::default());
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn static_window_freezes_dynamic_keeps_updating() {
        let mk = |v: f64| RawSample {
            ratios: vec![v],
            total_insts: v,
        };
        let mut stat = WindowNormalizer::new(WindowKind::Static(2));
        let mut dyn_ = WindowNormalizer::new(WindowKind::Dynamic);
        for v in [1.0, 3.0, 50.0, 70.0] {
            stat.feed(&mk(v));
            dyn_.feed(&mk(v));
        }
        assert_eq!(stat.means().unwrap().ratio_means[0], 2.0);
        assert_eq!(dyn_.means().unwrap().ratio_means[0], 31.0);
    }

    #[test]
    fn exact_window_matches_group_means() {
        let raws: Vec<RawSample> = (0..10)
            .map(|i| RawSample {
                ratios: vec![i as f64],
                total_insts: (i * i) as f64,
            })
            .collect();
        let mut w = WindowNormalizer::new(WindowKind::Exact);
        for r in &raws {
            w.feed(r);
        }
        let exact = GroupMeans::exact(&raws);
        assert_eq!(w.means().unwrap(), exact);
    }

    #[test]
    #[should_panic(expected = "group means need samples")]
    fn exact_means_reject_an_empty_group() {
        GroupMeans::exact(&[]);
    }

    #[test]
    #[should_panic(expected = "feed at least one sample")]
    fn window_features_before_any_feed_panic() {
        WindowNormalizer::new(WindowKind::Dynamic).features(
            &RawSample {
                ratios: vec![0.1],
                total_insts: 1.0,
            },
            &FeatureConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "empty group")]
    fn training_data_rejects_an_empty_group() {
        group_training_data(&[], &[], &FeatureConfig::default());
    }

    #[test]
    #[should_panic(expected = "stats vs labels")]
    fn training_data_rejects_mismatched_labels() {
        group_training_data(&[stats(10, 5, 5)], &[1.0, 2.0], &FeatureConfig::default());
    }

    #[test]
    fn normalize_guards_tiny_means_and_keeps_eq2_elsewhere() {
        assert_eq!(normalize(5.0, 0.0), 0.0);
        assert_eq!(normalize(5.0, 1e-13), 0.0, "below the 1e-12 guard");
        assert_eq!(normalize(2.0, 2.0), 0.0, "sample at the mean");
        assert!((normalize(3.0, 2.0) - 0.5).abs() < 1e-12);
        // Negative means stay Eq. 2: (1 - (-2)) / (-2).
        assert!((normalize(1.0, -2.0) + 1.5).abs() < 1e-12);
    }

    #[test]
    fn no_l3_target_keeps_vector_names_and_means_consistent() {
        let cfg = FeatureConfig::default();
        let group: Vec<RawSample> = (1..=3)
            .map(|i| raw_sample(&stats(i * 100, i * 90, i * 10), &cfg))
            .collect();
        assert!(group.iter().all(|r| r.ratios.len() == 21));
        let means = GroupMeans::exact(&group);
        assert_eq!(means.ratio_means.len(), 21);
        let f = means.features(&group[0], &cfg);
        assert_eq!(f.len(), feature_names(false, &cfg).len());
        assert!(f.iter().all(|v| v.is_finite()));
        assert!(feature_names(false, &cfg).iter().all(|n| !n.contains("l3")));
        assert!(feature_names(true, &cfg)
            .iter()
            .any(|n| n.starts_with("l3_")));
    }

    #[test]
    fn dynamic_window_keeps_all_zero_columns_finite() {
        let sample = RawSample {
            ratios: vec![0.0, 0.5],
            total_insts: 10.0,
        };
        let mut w = WindowNormalizer::new(WindowKind::Dynamic);
        for _ in 0..3 {
            w.feed(&sample);
        }
        assert_eq!(w.count(), 3);
        let f = w.features(&sample, &FeatureConfig::default());
        assert!(f.iter().all(|v| v.is_finite()));
        // The zero-mean column normalizes to the guard value, not NaN.
        assert_eq!(f[2], 0.0);
    }

    #[test]
    fn zero_width_static_window_freezes_on_the_first_sample() {
        let mk = |v: f64| RawSample {
            ratios: vec![v],
            total_insts: 1.0,
        };
        let mut w = WindowNormalizer::new(WindowKind::Static(0));
        w.feed(&mk(2.0));
        w.feed(&mk(100.0));
        assert_eq!(w.means().unwrap().ratio_means[0], 2.0);
        assert_eq!(w.count(), 1, "frozen windows stop accumulating");
    }

    #[test]
    fn group_training_data_shapes_and_labels() {
        let group: Vec<SimStats> = (1..=4).map(|i| stats(i * 100, i * 90, i * 10)).collect();
        let t = vec![1.0, 2.0, 3.0, 4.0];
        let (x, y) = group_training_data(&group, &t, &FeatureConfig::default());
        assert_eq!(x.rows(), 4);
        assert_eq!(x.cols(), 21 * 2 + 1);
        // Labels are group-normalized: mean 2.5 -> (1-2.5)/2.5 = -0.6.
        assert!((y[0] + 0.6).abs() < 1e-12);
        assert!((y[3] - 0.6).abs() < 1e-12);
        assert!((y.iter().sum::<f64>()).abs() < 1e-12);
    }
}
