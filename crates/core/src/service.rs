//! Tuning-as-a-service: N named tenants multiplexed onto one shared
//! worker pool and one shared memo cache.
//!
//! The paper's pitch is that instruction-accurate simulation makes
//! autotuning cheap enough to run *continuously*. A long-lived daemon
//! serving that traffic cannot afford one worker pool per tuning
//! session — 10 tenants × 16 workers oversubscribes any host — nor cold
//! caches per session. [`SimService`] owns exactly one
//! [`WorkerPool`](crate::metrics::WorkerPoolStats) and one
//! [`SimCache`], and each [`TenantSession`] plugs into them:
//!
//! ```text
//!  tenant "ci-conv2d" ──► TenantSession ──► SimSession (lane 1) ─┐
//!  tenant "ad-hoc"    ──► TenantSession ──► SimSession (lane 2) ─┼─► shared WorkerPool
//!  tenant "nightly"   ──► TenantSession ──► SimSession (lane 3) ─┘        │
//!                                               │                          ▼
//!                                               └──────────────────► shared SimCache
//! ```
//!
//! # Fairness
//!
//! Every tenant gets its own scheduling *lane*; the pool picks the next
//! batch round-robin across lanes (see `crates/core/src/pool.rs`), so a
//! tenant that enqueues a thousand-batch backlog cannot starve another
//! tenant's single `submit`/`wait`. Within one tenant, batches stay
//! FIFO, which preserves the per-session determinism contract: each
//! tenant's results are bit-identical at every `n_parallel`, regardless
//! of what the other tenants are doing.
//!
//! # Isolation
//!
//! Tenants share *results* (the memo cache) but not *failure*: a trial
//! that panics is converted to an error inside its own batch, and every
//! lock the pool and cache take recovers from poisoning — one tenant's
//! crash cannot wedge another tenant's `wait`.
//!
//! Per-tenant traffic is accounted through
//! [`TenantStats`](crate::metrics::TenantStats): memo hits/misses on
//! the shared cache, and this tenant's share of the pool's trials and
//! busy time.

use crate::autotune::{
    tune_with_fidelity_escalation, tune_with_predictor_on, EscalatedTuneResult, EscalationOptions,
    TuneOptions, TuneResult,
};
use crate::backend::{SimBackend, SimSession};
use crate::memo::SimCache;
use crate::metrics::{MemoCacheStats, TenantStats, WorkerPoolStats};
use crate::pool::{TenantCounters, WorkerPool};
use crate::score::ScorePredictor;
use crate::snapshot::SnapshotLoad;
use crate::CoreError;
use simtune_cache::HierarchyConfig;
use simtune_hw::TargetSpec;
use simtune_isa::RunLimits;
use simtune_tensor::ComputeDef;
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, PoisonError};

/// Shared state behind every [`TenantSession`] of one service.
struct ServiceShared {
    pool: Arc<WorkerPool>,
    cache: Arc<SimCache>,
    limits: RunLimits,
    tenants: Mutex<TenantRegistry>,
}

#[derive(Default)]
struct TenantRegistry {
    /// Open tenants by name; the counters outlive a close only through
    /// a [`TenantStats`] snapshot taken before it.
    open: BTreeMap<String, Arc<TenantCounters>>,
    /// Monotone lane allocator. Lane 0 is reserved for standalone
    /// sessions, so tenants start at 1.
    next_lane: usize,
}

/// An in-process multi-tenant tuning service: one shared worker pool,
/// one shared memo cache, N named [`TenantSession`]s.
///
/// # Example
///
/// Two tenants share one pool and one cache; each sees its own
/// counters:
///
/// ```
/// use simtune_cache::HierarchyConfig;
/// use simtune_core::SimService;
/// use simtune_isa::{Executable, Gpr, Inst, ProgramBuilder, TargetIsa};
///
/// # fn main() -> Result<(), simtune_core::CoreError> {
/// let exe = |imm: i64| {
///     let mut b = ProgramBuilder::new();
///     b.push(Inst::Li { rd: Gpr(1), imm });
///     b.push(Inst::Halt);
///     Executable::new("e", b.build().unwrap(), TargetIsa::riscv_u74())
/// };
/// let hier = HierarchyConfig::tiny_for_tests();
/// let service = SimService::builder().n_parallel(2).build();
/// let alice = service.open_accurate("alice", &hier)?;
/// let bob = service.open_accurate("bob", &hier)?;
/// alice.session().run(&[exe(1), exe(2)]);
/// bob.session().run(&[exe(1)]); // alice already simulated this one
/// assert_eq!(alice.stats().memo.misses, 2);
/// assert_eq!(bob.stats().memo.hits, 1, "warm from alice's work");
/// # Ok(())
/// # }
/// ```
pub struct SimService {
    shared: Arc<ServiceShared>,
}

impl fmt::Debug for SimService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimService")
            .field("n_parallel", &self.shared.pool.workers())
            .field("tenants", &self.tenant_count())
            .field("cache_entries", &self.shared.cache.len())
            .finish()
    }
}

/// Builder for [`SimService`].
#[derive(Default)]
pub struct SimServiceBuilder {
    n_parallel: Option<usize>,
    cache: Option<Arc<SimCache>>,
    limits: Option<RunLimits>,
}

impl fmt::Debug for SimServiceBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimServiceBuilder")
            .field("n_parallel", &self.n_parallel)
            .finish()
    }
}

impl SimServiceBuilder {
    /// Worker threads of the shared pool (clamped to at least 1; the
    /// host-sized default of [`crate::SimSessionBuilder::n_parallel`]
    /// applies when unset).
    pub fn n_parallel(mut self, n: usize) -> Self {
        self.n_parallel = Some(n.max(1));
        self
    }

    /// Uses an existing cache (e.g. a bounded one) instead of the
    /// default unbounded [`SimCache::new`].
    pub fn cache(mut self, cache: Arc<SimCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Per-run instruction budget every tenant session inherits.
    pub fn limits(mut self, limits: RunLimits) -> Self {
        self.limits = Some(limits);
        self
    }

    /// Spawns the shared pool and finishes the service.
    pub fn build(self) -> SimService {
        let workers = self.n_parallel.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .clamp(1, 16)
        });
        SimService {
            shared: Arc::new(ServiceShared {
                pool: WorkerPool::new(workers),
                cache: self.cache.unwrap_or_else(|| Arc::new(SimCache::new())),
                limits: self.limits.unwrap_or_default(),
                tenants: Mutex::new(TenantRegistry {
                    open: BTreeMap::new(),
                    next_lane: 1,
                }),
            }),
        }
    }
}

impl SimService {
    /// Starts building a service.
    pub fn builder() -> SimServiceBuilder {
        SimServiceBuilder::default()
    }

    /// Opens a named tenant on an explicit backend. The tenant's
    /// session shares the service's pool (on a fresh scheduling lane)
    /// and memo cache; the name is released when the returned
    /// [`TenantSession`] is dropped.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Pipeline`] when the name is already open.
    pub fn open_tenant(
        &self,
        name: &str,
        backend: Arc<dyn SimBackend>,
    ) -> Result<TenantSession, CoreError> {
        let counters = Arc::new(TenantCounters::default());
        let lane = {
            let mut reg = self
                .shared
                .tenants
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if reg.open.contains_key(name) {
                return Err(CoreError::Pipeline(format!(
                    "tenant {name:?} is already open"
                )));
            }
            let lane = reg.next_lane;
            reg.next_lane += 1;
            reg.open.insert(name.to_string(), counters.clone());
            lane
        };
        let session = SimSession::builder()
            .backend(backend)
            .limits(self.shared.limits)
            .memo_cache(self.shared.cache.clone())
            .shared_pool(self.shared.pool.clone(), lane, Some(counters.clone()))
            .build()?;
        Ok(TenantSession {
            name: name.to_string(),
            shared: self.shared.clone(),
            session,
            counters,
        })
    }

    /// [`SimService::open_tenant`] on the instruction-accurate backend
    /// for `hierarchy` — the fidelity tuning loops submit at.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Pipeline`] when the name is already open.
    pub fn open_accurate(
        &self,
        name: &str,
        hierarchy: &HierarchyConfig,
    ) -> Result<TenantSession, CoreError> {
        self.open_fidelity(name, &crate::FidelitySpec::Accurate, hierarchy)
    }

    /// [`SimService::open_tenant`] on the tier a
    /// [`FidelitySpec`](crate::FidelitySpec) names — the uniform entry
    /// point the serve protocol's `fidelity` field routes through.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Pipeline`] when the name is already open or
    /// the spec's parameters are rejected by the tier.
    pub fn open_fidelity(
        &self,
        name: &str,
        spec: &crate::FidelitySpec,
        hierarchy: &HierarchyConfig,
    ) -> Result<TenantSession, CoreError> {
        self.open_tenant(name, spec.build(hierarchy)?)
    }

    /// Number of currently open tenants.
    pub fn tenant_count(&self) -> usize {
        self.shared
            .tenants
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .open
            .len()
    }

    /// Per-tenant counters of every open tenant, sorted by name.
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        let reg = self
            .shared
            .tenants
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let wall = self.shared.pool.stats().wall_nanos;
        reg.open
            .iter()
            .map(|(name, c)| tenant_stats(name, c, self.shared.pool.workers(), wall))
            .collect()
    }

    /// The shared memo cache.
    pub fn cache(&self) -> &Arc<SimCache> {
        &self.shared.cache
    }

    /// Aggregate counters of the shared pool (all tenants combined).
    pub fn pool_stats(&self) -> WorkerPoolStats {
        self.shared.pool.stats()
    }

    /// Worker threads of the shared pool.
    pub fn n_parallel(&self) -> usize {
        self.shared.pool.workers()
    }

    /// Persists the shared cache to `path` (atomic write); returns the
    /// number of entries written. See [`SimCache::save_to`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_snapshot(&self, path: &Path) -> io::Result<usize> {
        self.shared.cache.save_to(path)
    }

    /// Warms the shared cache from a snapshot, degrading to a cold
    /// start on a missing, corrupt or version-mismatched file. See
    /// [`SimCache::load_from`].
    ///
    /// # Errors
    ///
    /// Propagates genuine I/O errors only.
    pub fn load_snapshot(&self, path: &Path) -> io::Result<SnapshotLoad> {
        self.shared.cache.load_from(path)
    }
}

fn tenant_stats(name: &str, c: &TenantCounters, workers: usize, wall_nanos: u64) -> TenantStats {
    TenantStats {
        tenant: name.to_string(),
        memo: MemoCacheStats {
            hits: c.memo_hits.load(Ordering::Relaxed),
            misses: c.memo_misses.load(Ordering::Relaxed),
        },
        pool: WorkerPoolStats {
            workers,
            batches: c.batches.load(Ordering::Relaxed),
            trials: c.trials.load(Ordering::Relaxed),
            busy_nanos: c.busy_nanos.load(Ordering::Relaxed),
            wall_nanos,
        },
        predictor: *c.predictor.lock().unwrap_or_else(PoisonError::into_inner),
    }
}

/// One named tenant of a [`SimService`]: a [`SimSession`] wired to the
/// shared pool and cache, plus per-tenant accounting. Dropping the
/// session releases the tenant name.
pub struct TenantSession {
    name: String,
    shared: Arc<ServiceShared>,
    session: SimSession,
    counters: Arc<TenantCounters>,
}

impl fmt::Debug for TenantSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TenantSession")
            .field("name", &self.name)
            .field("backend", &self.session.backend_name())
            .finish()
    }
}

impl TenantSession {
    /// The tenant's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying session — submit batches with
    /// [`SimSession::submit`] / [`SimSession::run`] as usual; they
    /// execute on the service's shared pool under this tenant's lane.
    pub fn session(&self) -> &SimSession {
        &self.session
    }

    /// Runs a full predictor-guided tuning loop on this tenant's
    /// session ([`crate::tune_with_predictor_on`]): the loop's
    /// simulations share the service pool fairly with every other
    /// tenant and hit the shared memo cache.
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures from the tuning loop.
    pub fn tune(
        &self,
        def: &ComputeDef,
        spec: &TargetSpec,
        predictor: &ScorePredictor,
        opts: &TuneOptions,
    ) -> Result<TuneResult, CoreError> {
        tune_with_predictor_on(def, spec, predictor, opts, &self.session)
    }

    /// Runs a fidelity-escalation tuning loop for this tenant
    /// ([`crate::tune_with_fidelity_escalation`]). Escalation needs two
    /// backends — a cheap exploration tier and the accurate tier — so
    /// the loop runs on dedicated sessions rather than this tenant's
    /// single-backend session, but it shares the service's memo cache
    /// and inherits the service's worker count; `opts.n_parallel` and
    /// `opts.memo_cache` are overridden accordingly. When the
    /// uncertainty policy is active, the run's
    /// [`PredictorStats`](crate::metrics::PredictorStats) are folded
    /// into this tenant's counters and surface through
    /// [`TenantSession::stats`] and [`SimService::tenant_stats`].
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures from the tuning loop.
    pub fn tune_escalated(
        &self,
        def: &ComputeDef,
        spec: &TargetSpec,
        predictor: &ScorePredictor,
        opts: &TuneOptions,
        esc: &EscalationOptions,
    ) -> Result<EscalatedTuneResult, CoreError> {
        let opts = TuneOptions {
            n_parallel: self.shared.pool.workers(),
            memo_cache: Some(Arc::clone(&self.shared.cache)),
            ..opts.clone()
        };
        let out = tune_with_fidelity_escalation(def, spec, predictor, &opts, esc)?;
        if let Some(ps) = &out.result.predictor {
            self.counters
                .predictor
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .merge(ps);
        }
        Ok(out)
    }

    /// This tenant's counters: memo hits/misses and its share of the
    /// shared pool's execution time.
    pub fn stats(&self) -> TenantStats {
        tenant_stats(
            &self.name,
            &self.counters,
            self.shared.pool.workers(),
            self.shared.pool.stats().wall_nanos,
        )
    }
}

impl Drop for TenantSession {
    fn drop(&mut self) {
        self.shared
            .tenants
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .open
            .remove(&self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtune_isa::{Executable, Gpr, Inst, ProgramBuilder, TargetIsa};

    fn exe(imm: i64) -> Executable {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Li { rd: Gpr(1), imm });
        b.push(Inst::Halt);
        Executable::new("e", b.build().unwrap(), TargetIsa::riscv_u74())
    }

    #[test]
    fn duplicate_tenant_names_are_rejected_until_dropped() {
        let service = SimService::builder().n_parallel(1).build();
        let first = service.open_accurate("ci", &HierarchyConfig::tiny_for_tests());
        assert!(first.is_ok());
        let dup = service.open_accurate("ci", &HierarchyConfig::tiny_for_tests());
        assert!(matches!(dup, Err(CoreError::Pipeline(_))));
        drop(first);
        assert_eq!(service.tenant_count(), 0);
        assert!(service
            .open_accurate("ci", &HierarchyConfig::tiny_for_tests())
            .is_ok());
    }

    #[test]
    fn tenants_share_the_cache_but_count_their_own_traffic() {
        let service = SimService::builder().n_parallel(2).build();
        let hier = HierarchyConfig::tiny_for_tests();
        let a = service.open_accurate("a", &hier).unwrap();
        let b = service.open_accurate("b", &hier).unwrap();
        for r in a.session().run(&[exe(1), exe(2), exe(3)]) {
            r.unwrap();
        }
        for r in b.session().run(&[exe(1), exe(2)]) {
            r.unwrap();
        }
        let (sa, sb) = (a.stats(), b.stats());
        assert_eq!(sa.memo.misses, 3);
        assert_eq!(sa.memo.hits, 0);
        assert_eq!(sb.memo.hits, 2, "warm from tenant a");
        assert_eq!(sb.memo.misses, 0);
        assert_eq!(sa.pool.trials, 3);
        assert_eq!(sb.pool.trials, 0, "fully memoized");
        // The shared cache aggregates both tenants.
        let agg = service.cache().stats();
        assert_eq!((agg.hits, agg.misses), (2, 3));
        // Service-level listing matches the per-tenant views.
        let all = service.tenant_stats();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].tenant, "a");
        assert_eq!(all[1].tenant, "b");
        assert_eq!(all[0].memo, sa.memo);
        assert_eq!(all[1].memo, sb.memo);
    }

    #[test]
    fn snapshot_roundtrip_through_the_service() {
        let path =
            std::env::temp_dir().join(format!("simtune_service_snap_{}.json", std::process::id()));
        let hier = HierarchyConfig::tiny_for_tests();
        let cold = SimService::builder().n_parallel(1).build();
        let t = cold.open_accurate("writer", &hier).unwrap();
        for r in t.session().run(&[exe(10), exe(11)]) {
            r.unwrap();
        }
        assert_eq!(cold.save_snapshot(&path).unwrap(), 2);

        let warm = SimService::builder().n_parallel(1).build();
        assert_eq!(warm.load_snapshot(&path).unwrap(), SnapshotLoad::Loaded(2));
        let t = warm.open_accurate("reader", &hier).unwrap();
        for r in t.session().run(&[exe(10), exe(11)]) {
            r.unwrap();
        }
        let s = t.stats();
        assert_eq!((s.memo.hits, s.memo.misses), (2, 0));
        assert_eq!(s.pool.trials, 0, "zero executions on the warm pass");
        std::fs::remove_file(&path).ok();
    }
}
