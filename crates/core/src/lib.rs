//! The paper's contribution: a simulator interface for autotuning
//! workloads (Contribution I) and score predictors that make
//! instruction-accurate simulators usable for performance estimation
//! (Contribution II).
//!
//! The pieces map onto the paper as follows:
//!
//! | paper artifact | module |
//! |---|---|
//! | "any simulator can be plugged in" (Section II-C) | [`SimBackend`], [`BackendRegistry`], [`SimSession`] |
//! | repeated performance queries made cheap (the paper's throughput argument) | [`SimCache`] memoization + pre-decoded execution ([`simtune_isa::DecodedProgram`]) |
//! | `SimulatorRunner` / `local_run` override (Listings 3–4, Fig. 1-I) | [`SimulatorRunner`], [`FunctionRegistry`] |
//! | fidelity/speed trade-off across simulators (Fig. 1) | [`FidelitySpec`], [`AccurateBackend`], [`PipelinedBackend`], [`FastCountBackend`], [`SampledBackend`], [`tune_with_fidelity_escalation`] |
//! | simulator statistics → predictor inputs (Eqs. 1–2) | [`raw_sample`], [`GroupMeans`] |
//! | static/dynamic window mean approximation (Section III-E) | [`WindowNormalizer`] |
//! | predictor training / execution workflow (Fig. 4) | [`ScorePredictor`], [`collect_group_data`] |
//! | evaluation metrics `E_top1`, `R_top1`, `Q` and Eq. 4 | [`prediction_metrics`], [`parallel_speedup_k`] |
//! | batch-wise candidate search (Fig. 2) | [`tune_with_predictor`], [`tune_template_space`] |
//! | "selectable tuning algorithms" (Section II-A) | [`SearchStrategy`], [`StrategySpec`], [`search`] |
//!
//! # Quickstart
//!
//! ```no_run
//! use simtune_core::{collect_group_data, evaluate_predictor, CollectOptions, FeatureConfig};
//! use simtune_hw::TargetSpec;
//! use simtune_predict::PredictorKind;
//! use simtune_tensor::{conv2d_bias_relu, Conv2dShape};
//!
//! # fn main() -> Result<(), simtune_core::CoreError> {
//! let spec = TargetSpec::riscv_u74();
//! let shape = Conv2dShape { n: 1, h: 14, w: 14, co: 8, ci: 4, kh: 3, kw: 3,
//!                           stride: (1, 1), pad: (1, 1) };
//! let def = conv2d_bias_relu(&shape);
//! let data = collect_group_data(&def, &spec, 0, &CollectOptions::default())?;
//! let report = evaluate_predictor(
//!     PredictorKind::Xgboost, &[data], "riscv", "conv2d_bias_relu",
//!     25, 10, 42, FeatureConfig::default())?;
//! println!("E_top1 = {:.1} %", report.per_group[0].e_top1);
//! # Ok(())
//! # }
//! ```

mod autotune;
mod backend;
pub mod diffharness;
mod error;
mod features;
mod fidelity;
mod interface;
pub mod log;
mod memo;
mod metrics;
mod pipelined;
mod pool;
mod predicted;
mod runner;
mod score;
pub mod search;
mod service;
mod snapshot;
mod template_tune;
mod workflow;

pub use autotune::{
    tune_on_hardware, tune_with_fidelity_escalation, tune_with_predictor, tune_with_predictor_on,
    EscalatedTuneResult, EscalationOptions, EscalationPolicy, TuneOptions, TuneRecord, TuneResult,
    UncertaintyPolicy,
};
pub use backend::{
    AccurateBackend, BackendError, BackendRegistry, FastCountBackend, Fidelity, FnBackend,
    SampledBackend, SimBackend, SimReport, SimSession, SimSessionBuilder, SAMPLED,
};
pub use error::CoreError;
pub use features::{
    feature_names, group_training_data, raw_sample, FeatureConfig, GroupMeans, RawSample,
    WindowKind, WindowNormalizer,
};
pub use fidelity::{FidelitySpec, DEFAULT_BTB_ENTRIES, DEFAULT_RAS_DEPTH, DEFAULT_SAMPLE_FRACTION};
#[allow(deprecated)]
pub use interface::FunctionRegistry;
pub use interface::LOCAL_RUNNER_RUN;
pub use memo::{fingerprint as memo_fingerprint, SimCache};
pub use metrics::{
    e_top1, parallel_speedup_k, prediction_metrics, quality_score, r_top1, ConvergenceStats,
    MemoCacheStats, PredictionMetrics, PredictorStats, SnapshotStats, StageTimings, TenantStats,
    WorkerPoolStats,
};
pub use pipelined::{PipelinedBackend, PIPELINED};
pub use pool::BatchTicket;
pub use predicted::{
    shared_predictor, OnlinePredictor, PredictedBackend, Prediction, Predictor, SharedPredictor,
};
pub use runner::{HardwareRunner, KernelBuilder, SimulatorRunFn, SimulatorRunner};
pub use score::{GroupData, ScorePredictor};
pub use search::{
    Annealing, CustomStrategyFactory, Evaluation, Evolutionary, GridSearch, HillClimb,
    RandomSearch, SearchSpace, SearchStrategy, SketchSpace, StrategySpec, TemplateSpace,
};
pub use service::{SimService, SimServiceBuilder, TenantSession};
// The pipelined tier's cycle accounting is part of `SimReport`, so the
// breakdown struct is re-exported for callers inspecting reports
// without a direct `simtune_hw` dependency.
pub use simtune_hw::CycleBreakdown;
// Replay-engine selection is part of the session/tuning surface, so the
// kind enum is re-exported for callers configuring `TuneOptions` or
// `SimSessionBuilder` without a direct `simtune_isa` dependency.
pub use simtune_isa::EngineKind;
pub use snapshot::{atomic_write, SnapshotLoad, SNAPSHOT_SCHEMA};
pub use template_tune::tune_template_space;
pub use workflow::{
    collect_group_data, evaluate_predictor, holdout_group_curves, split_train_test, CollectOptions,
    EvalReport, SortedPrediction,
};
