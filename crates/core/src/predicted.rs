//! The *predicted* fidelity tier: a model trained **online** on the
//! reports already flowing through a tuning session.
//!
//! The ladder in [`crate::backend`] trades simulation cost for fidelity
//! — counting, sampled, accurate. This module adds a rung *below* all
//! of them: once enough `(feature vector, accurate score)` pairs have
//! streamed past, a learned [`Predictor`] answers score queries without
//! simulating at all. Because every model behind
//! [`simtune_predict::PredictorKind`] also reports a per-query
//! uncertainty ([`simtune_predict::UncertainRegressor`]), the tier
//! knows *when not to trust itself*: the uncertainty-driven escalation
//! policy in [`crate::tune_with_fidelity_escalation`] only pays for an
//! accurate simulation when the model's confidence band around a
//! candidate still overlaps the incumbent best.
//!
//! Three pieces:
//!
//! * [`Prediction`] — a `(mean, std)` score estimate with the
//!   confidence-bound helper the escalation policy queries;
//! * [`Predictor`] / [`OnlinePredictor`] — the online-learning
//!   abstraction: observe pairs, refit incrementally mid-sweep, answer
//!   with uncertainty;
//! * [`PredictedBackend`] — a [`SimBackend`] wrapper that stamps its
//!   reports [`Fidelity::Predicted`] and carries the shared predictor
//!   handle, so sessions built on it advertise the tier they answer
//!   from.
//!
//! Determinism: the predictor itself is deterministic under a fixed
//! seed (see the conformance suite in `simtune-predict`), and the
//! tuning loop trains and queries it **only on the producer thread, in
//! submission order** — so the tier composes with `n_parallel` workers
//! without perturbing results.

use crate::backend::{BackendError, Fidelity, SimBackend, SimReport};
use simtune_isa::{DecodedProgram, Executable, RunLimits};
use simtune_linalg::Matrix;
use simtune_predict::{PredictorKind, UncertainRegressor};
use std::sync::{Arc, Mutex};

/// A learned score estimate: posterior mean plus a one-sigma
/// uncertainty (GP posterior std, sub-ensemble spread or training
/// residual, depending on the model family).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predicted score (lower = better, same scale as the accurate
    /// tier's scores).
    pub mean: f64,
    /// One-sigma uncertainty around `mean`; non-negative and finite.
    pub std: f64,
}

impl Prediction {
    /// Lower confidence bound `mean − beta·std` — the optimistic score
    /// the escalation policy compares against the incumbent best.
    pub fn lower(&self, beta: f64) -> f64 {
        self.mean - beta * self.std
    }
}

/// An online score model: accumulates `(features, score)` observations
/// during a sweep, refits incrementally, and answers queries with a
/// [`Prediction`] once trained.
///
/// Implementations must be deterministic: identical observation
/// sequences (same order, same values) and identical refit points must
/// yield bit-identical predictions.
pub trait Predictor: Send {
    /// Label of the underlying model family (e.g. `"bayes"`).
    fn name(&self) -> &str;

    /// True once the model has been fit at least once and can answer
    /// [`Predictor::predict`] queries.
    fn ready(&self) -> bool;

    /// Number of `(features, score)` pairs observed so far.
    fn observations(&self) -> usize;

    /// Records one training pair. Does **not** refit — call
    /// [`Predictor::refit`] at batch boundaries so training cost stays
    /// amortized and the refit schedule stays deterministic.
    fn observe(&mut self, features: &[f64], score: f64);

    /// Refits the model on everything observed so far if the refit
    /// schedule says it is due. Returns `true` when a fit actually
    /// happened. A failed fit (degenerate data) leaves the previous
    /// model in place and returns `false` — the tier degrades to
    /// escalating everything rather than erroring out of a sweep.
    fn refit(&mut self) -> bool;

    /// Predicted score with uncertainty for one feature vector, or
    /// `None` while the model is not [`Predictor::ready`] (or the
    /// query is malformed, e.g. a feature-dimension mismatch).
    fn predict(&self, features: &[f64]) -> Option<Prediction>;
}

/// The default [`Predictor`]: any [`PredictorKind`] model behind a
/// min-train / refit-every schedule.
///
/// * No fit happens before `min_train` observations — a cold model
///   answers `None` and the escalation policy simulates everything,
///   which is exactly the behavior that produces its first training
///   set.
/// * After the first fit, the model refits once `refit_every` new
///   observations have accumulated (always on the *full* history, so
///   early noisy fits cannot lock in).
pub struct OnlinePredictor {
    label: String,
    model: Box<dyn UncertainRegressor>,
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    min_train: usize,
    refit_every: usize,
    unfitted: usize,
    ready: bool,
}

impl std::fmt::Debug for OnlinePredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlinePredictor")
            .field("label", &self.label)
            .field("observations", &self.ys.len())
            .field("ready", &self.ready)
            .finish()
    }
}

impl OnlinePredictor {
    /// A fresh online model of the given family. `min_train` is clamped
    /// to at least 2 (no model fits on fewer points); `refit_every` to
    /// at least 1.
    pub fn new(kind: PredictorKind, seed: u64, min_train: usize, refit_every: usize) -> Self {
        OnlinePredictor {
            label: kind.label().to_string(),
            model: kind.build_uncertain(seed),
            xs: Vec::new(),
            ys: Vec::new(),
            min_train: min_train.max(2),
            refit_every: refit_every.max(1),
            unfitted: 0,
            ready: false,
        }
    }
}

impl Predictor for OnlinePredictor {
    fn name(&self) -> &str {
        &self.label
    }

    fn ready(&self) -> bool {
        self.ready
    }

    fn observations(&self) -> usize {
        self.ys.len()
    }

    fn observe(&mut self, features: &[f64], score: f64) {
        // A non-finite score (failed candidate) would poison every
        // model family's loss; the pair is dropped, not stored.
        if !score.is_finite() || features.iter().any(|v| !v.is_finite()) {
            return;
        }
        if let Some(first) = self.xs.first() {
            if first.len() != features.len() {
                return;
            }
        }
        self.xs.push(features.to_vec());
        self.ys.push(score);
        self.unfitted += 1;
    }

    fn refit(&mut self) -> bool {
        let n = self.ys.len();
        if n < self.min_train {
            return false;
        }
        if self.ready && self.unfitted < self.refit_every {
            return false;
        }
        let d = self.xs[0].len();
        let flat: Vec<f64> = self.xs.iter().flatten().copied().collect();
        let Ok(x) = Matrix::from_vec(n, d, flat) else {
            return false;
        };
        match self.model.fit(&x, &self.ys) {
            Ok(()) => {
                self.ready = true;
                self.unfitted = 0;
                true
            }
            Err(_) => false,
        }
    }

    fn predict(&self, features: &[f64]) -> Option<Prediction> {
        if !self.ready {
            return None;
        }
        let x = Matrix::from_vec(1, features.len(), features.to_vec()).ok()?;
        let (means, stds) = self.model.predict_with_uncertainty(&x).ok()?;
        let (mean, std) = (means[0], stds[0]);
        if !mean.is_finite() || !std.is_finite() {
            return None;
        }
        Some(Prediction { mean, std })
    }
}

/// Shared handle to an online predictor. The tuning loop holds one and
/// a [`PredictedBackend`] holds the same one; all training and querying
/// happens on the producer thread, in submission order, so the mutex is
/// never contended — it only makes the handle `Sync` for session
/// plumbing.
pub type SharedPredictor = Arc<Mutex<Box<dyn Predictor>>>;

/// Wraps a [`Predictor`] into a [`SharedPredictor`] handle.
pub fn shared_predictor(p: impl Predictor + 'static) -> SharedPredictor {
    Arc::new(Mutex::new(Box::new(p)))
}

/// The bottom rung of the fidelity ladder: statistics come from a
/// cheap inner backend (counting or sampled), but the *score* each
/// report feeds is answered — whenever the model is confident — by the
/// attached [`Predictor`] instead of an accurate simulation.
///
/// The backend itself only re-stamps reports with
/// [`Fidelity::Predicted`] and opts out of memoization (its meaning
/// changes as the model learns, so cached reports would lie); the
/// escalate-or-trust decision lives in the tuning loop, which reads
/// the same [`SharedPredictor`] through [`PredictedBackend::predictor`].
pub struct PredictedBackend {
    inner: Arc<dyn SimBackend>,
    predictor: SharedPredictor,
    name: String,
}

impl std::fmt::Debug for PredictedBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredictedBackend")
            .field("inner", &self.inner.name())
            .field("name", &self.name)
            .finish()
    }
}

impl PredictedBackend {
    /// A predicted tier over `inner` (the backend that still produces
    /// the raw statistics feature vectors are extracted from).
    pub fn new(inner: Arc<dyn SimBackend>, predictor: SharedPredictor) -> Self {
        let name = format!("predicted({})", inner.name());
        PredictedBackend {
            inner,
            predictor,
            name,
        }
    }

    /// The shared online model this tier answers from.
    pub fn predictor(&self) -> &SharedPredictor {
        &self.predictor
    }

    /// Name of the wrapped statistics-producing backend.
    pub fn inner_name(&self) -> &str {
        self.inner.name()
    }
}

impl SimBackend for PredictedBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn fidelity(&self) -> Fidelity {
        Fidelity::Predicted
    }

    fn run_one(&self, exe: &Executable, limits: &RunLimits) -> Result<SimReport, BackendError> {
        let mut report = self.inner.run_one(exe, limits)?;
        report.backend = self.name.clone();
        report.fidelity = Fidelity::Predicted;
        Ok(report)
    }

    fn run_one_decoded(
        &self,
        exe: &Executable,
        decoded: &DecodedProgram,
        limits: &RunLimits,
    ) -> Result<SimReport, BackendError> {
        let mut report = self.inner.run_one_decoded(exe, decoded, limits)?;
        report.backend = self.name.clone();
        report.fidelity = Fidelity::Predicted;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::FastCountBackend;
    use crate::KernelBuilder;
    use simtune_cache::HierarchyConfig;
    use simtune_tensor::{matmul, Schedule, TargetIsa};

    fn linear_pairs(n: usize) -> Vec<(Vec<f64>, f64)> {
        (0..n)
            .map(|i| {
                let a = (i % 7) as f64 / 3.0;
                let b = ((i * 3) % 5) as f64 / 2.0;
                (vec![a, b], 2.0 * a - b + 0.25)
            })
            .collect()
    }

    #[test]
    fn online_predictor_follows_the_refit_schedule() {
        let mut p = OnlinePredictor::new(PredictorKind::LinReg, 7, 4, 3);
        assert_eq!(p.name(), "LinReg");
        assert!(!p.ready());
        assert!(p.predict(&[0.0, 0.0]).is_none());
        let pairs = linear_pairs(12);
        for (x, y) in &pairs[..3] {
            p.observe(x, *y);
        }
        assert!(!p.refit(), "below min_train must not fit");
        p.observe(&pairs[3].0, pairs[3].1);
        assert!(p.refit(), "min_train reached");
        assert!(p.ready());
        assert_eq!(p.observations(), 4);
        // Fresh fit means the counter is drained: an immediate refit
        // with nothing new is a no-op.
        assert!(!p.refit());
        p.observe(&pairs[4].0, pairs[4].1);
        p.observe(&pairs[5].0, pairs[5].1);
        assert!(!p.refit(), "two of three new observations");
        p.observe(&pairs[6].0, pairs[6].1);
        assert!(p.refit(), "refit_every reached");
        let q = p.predict(&[1.0, 0.5]).expect("trained");
        assert!((q.mean - (2.0 - 0.5 + 0.25)).abs() < 1e-6);
        assert!(q.std.is_finite() && q.std >= 0.0);
        assert!(q.lower(2.0) <= q.mean);
    }

    #[test]
    fn online_predictor_drops_poisonous_observations() {
        let mut p = OnlinePredictor::new(PredictorKind::LinReg, 0, 2, 1);
        p.observe(&[1.0, 2.0], f64::INFINITY);
        p.observe(&[f64::NAN, 2.0], 1.0);
        p.observe(&[1.0, 2.0], 1.0);
        p.observe(&[1.0], 1.0); // dimension mismatch vs. first kept pair
        assert_eq!(p.observations(), 1);
        assert!(!p.refit());
        // A malformed query never panics, it just declines to answer.
        p.observe(&[2.0, 1.0], 2.0);
        p.observe(&[0.5, 0.25], 0.5);
        assert!(p.refit());
        assert!(p.predict(&[1.0]).is_none());
    }

    #[test]
    fn online_predictor_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut p = OnlinePredictor::new(PredictorKind::Xgboost, seed, 4, 2);
            for (x, y) in linear_pairs(10) {
                p.observe(&x, y);
                p.refit();
            }
            p.predict(&[0.7, 0.3]).expect("trained")
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn predicted_backend_restamps_reports() {
        let backend = PredictedBackend::new(
            Arc::new(FastCountBackend::matching(&HierarchyConfig::riscv_u74())),
            shared_predictor(OnlinePredictor::new(PredictorKind::LinReg, 0, 4, 2)),
        );
        assert_eq!(backend.name(), "predicted(fast-count)");
        assert_eq!(backend.inner_name(), "fast-count");
        assert_eq!(backend.fidelity(), Fidelity::Predicted);
        assert!(
            backend.memo_key().is_none(),
            "learned tier must not memoize"
        );
        let def = matmul(8, 8, 8);
        let builder = KernelBuilder::new(def.clone(), TargetIsa::riscv_u74());
        let exe = builder.build(&Schedule::default_for(&def), "mm").unwrap();
        let report = backend.run_one(&exe, &RunLimits::default()).unwrap();
        assert_eq!(report.backend, "predicted(fast-count)");
        assert_eq!(report.fidelity, Fidelity::Predicted);
        assert!(report.stats.inst_mix.total() > 0);
        assert!(backend.predictor().lock().unwrap().observations() == 0);
    }
}
