//! Builders and runners: the paper's Contribution I.
//!
//! TVM autotuning needs a *builder* (compiles a candidate into an object
//! file) and a *runner* (executes it and reports a cost). The paper adds
//! a `SimulatorRunner` (its Listing 3) that launches `n_parallel`
//! simulator instances instead of touching target hardware, plus an
//! overridable `simulator_run` hook so any simulator can be plugged in.
//! This module mirrors that API surface:
//!
//! * [`KernelBuilder`] — schedule → standalone [`Executable`];
//! * [`SimulatorRunner`] — parallel instruction-accurate simulations with
//!   an overridable run function;
//! * [`HardwareRunner`] — sequential noisy measurements on the emulated
//!   target board (native execution is never parallel, Section IV).

use crate::backend::{FnBackend, SimBackend, SimSession};
use crate::memo::SimCache;
use crate::CoreError;
use simtune_cache::HierarchyConfig;
use simtune_hw::{measure, MeasureConfig, Measurement, TargetSpec};
use simtune_isa::{Executable, RunLimits, SimError, SimStats};
use simtune_tensor::{build_executable, ComputeDef, Schedule, TargetIsa};
use std::sync::Arc;

/// Compiles kernel schedules into standalone executables (the "builder"
/// box of the paper's Fig. 2).
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    def: ComputeDef,
    target: TargetIsa,
    /// Seed for input-tensor preparation; fixed per builder so every
    /// candidate computes on identical data.
    pub data_seed: u64,
}

impl KernelBuilder {
    /// Creates a builder for one kernel on one target.
    pub fn new(def: ComputeDef, target: TargetIsa) -> Self {
        KernelBuilder {
            def,
            target,
            data_seed: 0x5EED,
        }
    }

    /// The kernel being built.
    pub fn def(&self) -> &ComputeDef {
        &self.def
    }

    /// The target ISA.
    pub fn target(&self) -> &TargetIsa {
        &self.target
    }

    /// Builds one candidate.
    ///
    /// # Errors
    ///
    /// Invalid schedules return [`CoreError::Codegen`] — the autotuner
    /// treats these as failed builds and penalizes the configuration.
    pub fn build(&self, schedule: &Schedule, name: &str) -> Result<Executable, CoreError> {
        Ok(build_executable(
            &self.def,
            schedule,
            &self.target,
            self.data_seed,
            name,
        )?)
    }

    /// Builds a batch, keeping per-candidate results.
    pub fn build_batch(&self, schedules: &[Schedule]) -> Vec<Result<Executable, CoreError>> {
        schedules
            .iter()
            .enumerate()
            .map(|(i, s)| self.build(s, &format!("{}#{i}", self.def.name)))
            .collect()
    }
}

/// The run function a [`SimulatorRunner`] invokes per executable — the
/// paper's overridable `simulator_run` hook. The default runs the
/// bundled instruction-accurate simulator; tests and integrations may
/// substitute anything that returns [`SimStats`].
pub type SimulatorRunFn = dyn Fn(&Executable) -> Result<SimStats, SimError> + Send + Sync;

/// Runs candidates on `n_parallel` simulator instances (paper Listing 3
/// / Fig. 1-I) — a thin convenience wrapper over [`SimSession`] that
/// defaults to the instruction-accurate [`crate::AccurateBackend`] and
/// strips reports down to bare [`SimStats`]. Code that cares about
/// fidelity tiers or per-report backend provenance should drive a
/// [`SimSession`] directly.
///
/// # Example
///
/// ```
/// use simtune_cache::HierarchyConfig;
/// use simtune_core::{KernelBuilder, SimulatorRunner};
/// use simtune_tensor::{matmul, Schedule, TargetIsa};
///
/// # fn main() -> Result<(), simtune_core::CoreError> {
/// let def = matmul(8, 8, 8);
/// let builder = KernelBuilder::new(def.clone(), TargetIsa::riscv_u74());
/// let exe = builder.build(&Schedule::default_for(&def), "mm")?;
/// let runner = SimulatorRunner::new(HierarchyConfig::riscv_u74()).with_n_parallel(2);
/// let stats = runner.run(&[exe]);
/// assert!(stats[0].as_ref().unwrap().inst_mix.total() > 0);
/// # Ok(())
/// # }
/// ```
pub struct SimulatorRunner {
    /// Simulator instances run concurrently.
    pub n_parallel: usize,
    /// Cache geometry each instance replicates.
    pub hierarchy: HierarchyConfig,
    /// Per-run instruction budget.
    pub limits: RunLimits,
    backend: Option<Arc<dyn SimBackend>>,
    memo: Option<Arc<SimCache>>,
}

impl std::fmt::Debug for SimulatorRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulatorRunner")
            .field("n_parallel", &self.n_parallel)
            .field("hierarchy", &self.hierarchy.name)
            .field(
                "backend",
                &self.backend.as_ref().map_or("accurate", |b| b.name()),
            )
            .finish()
    }
}

impl SimulatorRunner {
    /// Runner with the default parallelism of 16 (the paper's
    /// `n_parallel` default in Listing 3).
    pub fn new(hierarchy: HierarchyConfig) -> Self {
        SimulatorRunner {
            n_parallel: 16,
            hierarchy,
            limits: RunLimits::default(),
            backend: None,
            memo: None,
        }
    }

    /// Sets the number of parallel simulator instances.
    pub fn with_n_parallel(mut self, n: usize) -> Self {
        self.n_parallel = n.max(1);
        self
    }

    /// Plugs in a simulator backend (the typed form of the paper's
    /// "this function serves as a simulator interface and can be
    /// overwritten").
    pub fn with_backend(mut self, backend: Arc<dyn SimBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Overrides the `simulator_run` hook with a bare function (legacy
    /// seam; wrapped in a [`FnBackend`] internally). Prefer
    /// [`SimulatorRunner::with_backend`].
    pub fn with_run_override(mut self, f: Arc<SimulatorRunFn>) -> Self {
        self.backend = Some(Arc::new(FnBackend::new("override", f)));
        self
    }

    /// Attaches a simulation memo cache (see
    /// [`crate::SimSessionBuilder::memo_cache`]).
    pub fn with_memo_cache(mut self, cache: Arc<SimCache>) -> Self {
        self.memo = Some(cache);
        self
    }

    /// The session this runner's configuration resolves to.
    pub fn session(&self) -> SimSession {
        let builder = SimSession::builder()
            .n_parallel(self.n_parallel)
            .limits(self.limits)
            .memo_cache_opt(self.memo.clone());
        match &self.backend {
            Some(b) => builder.backend(b.clone()),
            None => builder.accurate(&self.hierarchy),
        }
        .build()
        .expect("runner always supplies a backend")
    }

    /// Runs every executable, `n_parallel` at a time, preserving order.
    pub fn run(&self, exes: &[Executable]) -> Vec<Result<SimStats, CoreError>> {
        self.session().run_stats(exes)
    }
}

/// Benchmarks candidates sequentially on the emulated target hardware —
/// the flow the simulator interface replaces, and the source of training
/// labels (`t_ref`).
#[derive(Debug, Clone)]
pub struct HardwareRunner {
    /// The emulated board.
    pub spec: TargetSpec,
    /// Benchmarking protocol (repetitions, cooldown).
    pub config: MeasureConfig,
    /// Base seed for measurement noise; each candidate derives its own.
    pub noise_seed: u64,
}

impl HardwareRunner {
    /// Runner with the paper's measurement protocol.
    pub fn new(spec: TargetSpec) -> Self {
        HardwareRunner {
            spec,
            config: MeasureConfig::default(),
            noise_seed: 0x11AD,
        }
    }

    /// Measures one executable.
    ///
    /// # Errors
    ///
    /// Propagates simulation faults as [`CoreError::Sim`].
    pub fn run_one(&self, exe: &Executable, index: usize) -> Result<Measurement, CoreError> {
        Ok(measure(
            exe,
            &self.spec,
            &self.config,
            self.noise_seed.wrapping_add(index as u64 * 0x9E37),
        )?)
    }

    /// Measures every executable in order (never in parallel: parallel
    /// native execution would disturb the measurements, Section IV).
    pub fn run(&self, exes: &[Executable]) -> Vec<Result<Measurement, CoreError>> {
        exes.iter()
            .enumerate()
            .map(|(i, e)| self.run_one(e, i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtune_tensor::matmul;

    fn builder() -> KernelBuilder {
        KernelBuilder::new(matmul(6, 6, 6), TargetIsa::riscv_u74())
    }

    fn exes(n: usize) -> Vec<Executable> {
        let b = builder();
        let s = Schedule::default_for(b.def());
        (0..n)
            .map(|i| b.build(&s, &format!("m{i}")).unwrap())
            .collect()
    }

    #[test]
    fn parallel_results_preserve_order_and_match_sequential() {
        let exes = exes(8);
        let seq = SimulatorRunner::new(HierarchyConfig::riscv_u74()).with_n_parallel(1);
        let par = SimulatorRunner::new(HierarchyConfig::riscv_u74()).with_n_parallel(4);
        let a: Vec<SimStats> = seq.run(&exes).into_iter().map(|r| r.unwrap()).collect();
        let b: Vec<SimStats> = par.run(&exes).into_iter().map(|r| r.unwrap()).collect();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.inst_mix, y.inst_mix);
            assert_eq!(x.cache, y.cache);
        }
    }

    #[test]
    fn run_override_is_used() {
        let exes = exes(3);
        let runner = SimulatorRunner::new(HierarchyConfig::riscv_u74()).with_run_override(
            Arc::new(|_exe| {
                Ok(SimStats {
                    host_nanos: 123,
                    ..SimStats::default()
                })
            }),
        );
        for r in runner.run(&exes) {
            assert_eq!(r.unwrap().host_nanos, 123);
        }
    }

    #[test]
    fn hardware_runner_measures_with_distinct_noise() {
        let exes = exes(2);
        let hw = HardwareRunner::new(TargetSpec::riscv_u74());
        let ms = hw.run(&exes);
        let a = ms[0].as_ref().unwrap();
        let b = ms[1].as_ref().unwrap();
        // Identical programs, identical base time, different noise draws.
        assert_eq!(a.base_seconds, b.base_seconds);
        assert_ne!(a.samples, b.samples);
    }

    #[test]
    fn builder_rejects_invalid_schedule() {
        let b = builder();
        let mut s = Schedule::default_for(b.def());
        s.order.pop();
        assert!(matches!(b.build(&s, "bad"), Err(CoreError::Codegen(_))));
    }

    #[test]
    fn build_batch_keeps_per_candidate_results() {
        let b = builder();
        let good = Schedule::default_for(b.def());
        let mut bad = good.clone();
        bad.order.pop();
        let rs = b.build_batch(&[good, bad]);
        assert!(rs[0].is_ok());
        assert!(rs[1].is_err());
    }
}
