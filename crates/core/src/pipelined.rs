//! Pipelined in-order timing tier: instruction-accurate semantics plus
//! a cycle-level [`PipelineModel`].
//!
//! [`PipelinedBackend`] sits between [`crate::SampledBackend`] and
//! [`crate::AccurateBackend`] on the fidelity ladder: it runs the same
//! functional replay as the reference (architectural statistics are
//! bit-identical by construction), but hooks a 5-stage in-order timing
//! model into the µop stream via
//! [`simtune_isa::TimingBridge`] — RAW/load-use stalls, branch
//! misprediction flushes against a BTB+RAS predictor, and a stride
//! prefetcher filling the shared cache hierarchy. The extra signal
//! lands in [`SimReport::cycles`] as a [`CycleBreakdown`].
//!
//! # Determinism contract
//!
//! A fresh [`PipelineModel`] is created per trial and all of its
//! accounting is integral, so cycle counts are byte-identical at every
//! `n_parallel` and on every replay [`EngineKind`] — the property the
//! differential harness ([`crate::diffharness`]) locks in. Because the
//! prefetcher mutates the trial's cache hierarchy, *cache* statistics
//! legitimately differ from the accurate tier's; instruction mix and
//! architectural state do not.

use crate::backend::{hierarchy_digest, BackendError, Fidelity, SimBackend, SimReport};
use simtune_cache::HierarchyConfig;
use simtune_hw::{CycleBreakdown, PipelineModel, TargetSpec};
use simtune_isa::{
    simulate_decoded_hooked_on, DecodedProgram, EngineKind, Executable, RunLimits, TimingBridge,
};

/// Canonical name of the pipelined timing flavor.
pub const PIPELINED: &str = "pipelined";

/// The cycle-level fidelity tier: accurate functional simulation with a
/// per-trial in-order pipeline timing model.
#[derive(Debug, Clone)]
pub struct PipelinedBackend {
    hierarchy: HierarchyConfig,
    btb_entries: usize,
    ras_depth: usize,
}

impl PipelinedBackend {
    /// Pipelined backend over `hierarchy` with a branch predictor BTB of
    /// `btb_entries` slots and a RAS of `ras_depth` slots.
    pub fn new(hierarchy: HierarchyConfig, btb_entries: usize, ras_depth: usize) -> Self {
        PipelinedBackend {
            hierarchy,
            btb_entries,
            ras_depth,
        }
    }

    /// The cache geometry each trial simulates.
    pub fn hierarchy(&self) -> &HierarchyConfig {
        &self.hierarchy
    }

    /// Configured BTB capacity.
    pub fn btb_entries(&self) -> usize {
        self.btb_entries
    }

    /// Configured RAS depth.
    pub fn ras_depth(&self) -> usize {
        self.ras_depth
    }

    /// Timing parameters for `exe`: the target spec matching the
    /// executable's ISA label (falling back to the U74 preset for
    /// custom ISAs), with the cache geometry overridden by this
    /// backend's configured hierarchy so timing and simulation agree.
    fn timing_spec(&self, exe: &Executable) -> TargetSpec {
        let mut spec = TargetSpec::by_name(exe.target.name).unwrap_or_else(TargetSpec::riscv_u74);
        spec.hierarchy = self.hierarchy.clone();
        spec
    }

    fn run(
        &self,
        exe: &Executable,
        decoded: &DecodedProgram,
        limits: &RunLimits,
        engine: EngineKind,
    ) -> Result<(simtune_isa::SimStats, CycleBreakdown), BackendError> {
        let spec = self.timing_spec(exe);
        let mut model = PipelineModel::new(&spec, self.btb_entries, self.ras_depth);
        let mut bridge = TimingBridge::new(&mut model);
        let out = simulate_decoded_hooked_on(
            exe,
            decoded,
            &self.hierarchy,
            *limits,
            engine,
            &mut bridge,
        )?;
        Ok((out.stats, model.breakdown()))
    }

    fn report(stats: simtune_isa::SimStats, cycles: CycleBreakdown) -> SimReport {
        SimReport {
            stats,
            backend: PIPELINED.into(),
            fidelity: Fidelity::Pipelined,
            extrapolated: false,
            cycles: Some(cycles),
        }
    }
}

impl SimBackend for PipelinedBackend {
    fn name(&self) -> &str {
        PIPELINED
    }

    fn fidelity(&self) -> Fidelity {
        Fidelity::Pipelined
    }

    fn run_one(&self, exe: &Executable, limits: &RunLimits) -> Result<SimReport, BackendError> {
        let decoded = exe.decode()?;
        self.run_one_decoded(exe, &decoded, limits)
    }

    fn run_one_decoded(
        &self,
        exe: &Executable,
        decoded: &DecodedProgram,
        limits: &RunLimits,
    ) -> Result<SimReport, BackendError> {
        self.run_one_decoded_on(exe, decoded, limits, EngineKind::Decoded)
    }

    fn run_one_decoded_on(
        &self,
        exe: &Executable,
        decoded: &DecodedProgram,
        limits: &RunLimits,
        engine: EngineKind,
    ) -> Result<SimReport, BackendError> {
        let (stats, cycles) = self.run(exe, decoded, limits, engine)?;
        Ok(Self::report(stats, cycles))
    }

    // No SoA path: each lane owns a timing model, so grouped replay
    // would buy nothing — supports_soa_batch stays false (the default)
    // and Batch sessions fall back to per-trial execution.

    fn memo_key(&self) -> Option<String> {
        Some(format!(
            "{} btb={} ras={}",
            hierarchy_digest(&self.hierarchy),
            self.btb_entries,
            self.ras_depth
        ))
    }

    fn fidelity_digest(&self) -> Option<String> {
        Some(format!(
            "pipelined:btb={},ras={} @ {}",
            self.btb_entries,
            self.ras_depth,
            hierarchy_digest(&self.hierarchy)
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::AccurateBackend;
    use simtune_isa::{Fpr, Gpr, Inst, ProgramBuilder, TargetIsa};

    fn hier() -> HierarchyConfig {
        HierarchyConfig::tiny_for_tests()
    }

    /// Loop whose inner branch direction depends on the iteration
    /// count — hostile to the bimodal predictor.
    fn branchy(n: i64) -> Executable {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Li { rd: Gpr(1), imm: 0 });
        b.push(Inst::Li { rd: Gpr(2), imm: n });
        let top = b.bind_new_label();
        b.push(Inst::Slli {
            rd: Gpr(4),
            rs: Gpr(1),
            shamt: 63,
        });
        let skip = b.new_label();
        b.branch_ne(Gpr(4), Gpr(5), skip);
        b.push(Inst::Addi {
            rd: Gpr(3),
            rs: Gpr(3),
            imm: 1,
        });
        b.bind(skip);
        b.push(Inst::Addi {
            rd: Gpr(1),
            rs: Gpr(1),
            imm: 1,
        });
        b.branch_lt(Gpr(1), Gpr(2), top);
        b.push(Inst::Halt);
        Executable::new("branchy", b.build().unwrap(), TargetIsa::riscv_u74())
    }

    /// Branch-free FP chain of comparable length.
    fn straightline(n: usize) -> Executable {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Fli {
            fd: Fpr(1),
            imm: 1.0,
        });
        for _ in 0..n {
            b.push(Inst::Fadd {
                fd: Fpr(1),
                fs1: Fpr(1),
                fs2: Fpr(1),
            });
        }
        b.push(Inst::Halt);
        Executable::new("straight", b.build().unwrap(), TargetIsa::riscv_u74())
    }

    #[test]
    fn cycles_present_and_dominate_instruction_count() {
        let backend = PipelinedBackend::new(hier(), 512, 8);
        let r = backend
            .run_one(&branchy(200), &RunLimits::default())
            .unwrap();
        assert_eq!(r.backend, "pipelined");
        assert_eq!(r.fidelity, Fidelity::Pipelined);
        let cycles = r.cycles.expect("pipelined tier reports a breakdown");
        assert!(cycles.total() >= r.stats.inst_mix.total() as f64);
    }

    #[test]
    fn arch_state_matches_the_accurate_tier() {
        let backend = PipelinedBackend::new(hier(), 512, 8);
        let acc = AccurateBackend::new(hier());
        let exe = branchy(100);
        let p = backend.run_one(&exe, &RunLimits::default()).unwrap();
        let a = acc.run_one(&exe, &RunLimits::default()).unwrap();
        assert_eq!(p.stats.inst_mix, a.stats.inst_mix);
    }

    #[test]
    fn cycles_are_deterministic_across_engines() {
        let backend = PipelinedBackend::new(hier(), 512, 8);
        let exe = branchy(150);
        let decoded = exe.decode().unwrap();
        let reference = backend
            .run_one_decoded(&exe, &decoded, &RunLimits::default())
            .unwrap();
        for engine in EngineKind::ALL {
            let r = backend
                .run_one_decoded_on(&exe, &decoded, &RunLimits::default(), engine)
                .unwrap();
            assert_eq!(r.cycles, reference.cycles, "engine {engine:?}");
            assert_eq!(r.stats.inst_mix, reference.stats.inst_mix);
        }
    }

    #[test]
    fn branch_hostile_code_pays_control_cycles_branch_free_does_not() {
        let backend = PipelinedBackend::new(hier(), 512, 8);
        let hostile = backend
            .run_one(&branchy(300), &RunLimits::default())
            .unwrap();
        let straight = backend
            .run_one(&straightline(300), &RunLimits::default())
            .unwrap();
        assert!(hostile.cycles.unwrap().control > 0.0);
        assert_eq!(straight.cycles.unwrap().control, 0.0);
    }

    #[test]
    fn digest_covers_every_knob() {
        let a = PipelinedBackend::new(hier(), 512, 8);
        let b = PipelinedBackend::new(hier(), 256, 8);
        let c = PipelinedBackend::new(hier(), 512, 4);
        assert_ne!(a.fidelity_digest(), b.fidelity_digest());
        assert_ne!(a.fidelity_digest(), c.fidelity_digest());
        assert!(a
            .fidelity_digest()
            .unwrap()
            .starts_with("pipelined:btb=512,ras=8 @ "));
    }
}
