//! AutoTVM-flavored tuning over template [`ConfigSpace`]s.
//!
//! The paper's Contribution I covers both TVM flows (its Listings 3
//! and 4): the Auto-Scheduler (sketches, [`crate::autotune`]) and
//! AutoTVM, where "tuners [are] responsible for selecting subsequent
//! programs based on selectable tuning algorithms" (Section II-A). This
//! module provides those selectable algorithms over a finite template
//! space — exhaustive grid, uniform random, and simulated annealing —
//! plus the simulator-backed tuning loop that evaluates them.

use crate::backend::SimSession;
use crate::features::WindowNormalizer;
use crate::runner::KernelBuilder;
use crate::score::ScorePredictor;
use crate::{CoreError, TuneOptions, TuneRecord, TuneResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simtune_hw::TargetSpec;
use simtune_tensor::{ComputeDef, ConfigSpace};
use std::collections::HashSet;

/// A search strategy over a template configuration space.
pub trait TemplateTuner {
    /// Proposes up to `n` configurations (one choice index per knob).
    fn next_batch(&mut self, n: usize) -> Vec<Vec<usize>>;

    /// Feeds back scores (lower = better).
    fn update(&mut self, batch: &[Vec<usize>], scores: &[f64]);

    /// Strategy label.
    fn name(&self) -> &'static str;
}

/// Exhaustive enumeration in index order (feasible for template spaces,
/// which are finite by construction).
#[derive(Debug)]
pub struct GridTemplateTuner {
    space: ConfigSpace,
    cursor: usize,
}

impl GridTemplateTuner {
    /// Creates a grid tuner over `space`.
    pub fn new(space: ConfigSpace) -> Self {
        GridTemplateTuner { space, cursor: 0 }
    }
}

impl TemplateTuner for GridTemplateTuner {
    fn next_batch(&mut self, n: usize) -> Vec<Vec<usize>> {
        let end = (self.cursor + n).min(self.space.len());
        let batch = (self.cursor..end)
            .map(|i| self.space.config_from_index(i))
            .collect();
        self.cursor = end;
        batch
    }

    fn update(&mut self, _batch: &[Vec<usize>], _scores: &[f64]) {}

    fn name(&self) -> &'static str {
        "grid"
    }
}

/// Uniform random sampling without replacement.
#[derive(Debug)]
pub struct RandomTemplateTuner {
    space: ConfigSpace,
    rng: StdRng,
    seen: HashSet<usize>,
}

impl RandomTemplateTuner {
    /// Creates a random tuner over `space`.
    pub fn new(space: ConfigSpace, seed: u64) -> Self {
        RandomTemplateTuner {
            space,
            rng: StdRng::seed_from_u64(seed),
            seen: HashSet::new(),
        }
    }
}

impl TemplateTuner for RandomTemplateTuner {
    fn next_batch(&mut self, n: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::with_capacity(n);
        let total = self.space.len();
        let mut attempts = 0;
        while out.len() < n && self.seen.len() < total && attempts < n * 100 {
            attempts += 1;
            let cfg = self.space.sample(&mut self.rng);
            if self.seen.insert(self.space.index_of(&cfg)) {
                out.push(cfg);
            }
        }
        out
    }

    fn update(&mut self, _batch: &[Vec<usize>], _scores: &[f64]) {}

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Simulated annealing over the knob lattice (AutoTVM's `sa` tuner
/// family): proposals are single-knob mutations of the incumbent,
/// accepted with the Metropolis criterion under a geometric temperature
/// schedule.
#[derive(Debug)]
pub struct SaTemplateTuner {
    space: ConfigSpace,
    rng: StdRng,
    incumbent: Option<(Vec<usize>, f64)>,
    temperature: f64,
    /// Multiplied into the temperature after every update.
    pub cooling: f64,
    seen: HashSet<usize>,
}

impl SaTemplateTuner {
    /// Creates an annealing tuner with initial temperature 1.0 and a
    /// 0.9 cooling factor per batch.
    pub fn new(space: ConfigSpace, seed: u64) -> Self {
        SaTemplateTuner {
            space,
            rng: StdRng::seed_from_u64(seed),
            incumbent: None,
            temperature: 1.0,
            cooling: 0.9,
            seen: HashSet::new(),
        }
    }
}

impl TemplateTuner for SaTemplateTuner {
    fn next_batch(&mut self, n: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::with_capacity(n);
        let mut attempts = 0;
        while out.len() < n && attempts < n * 100 {
            attempts += 1;
            let candidate = match &self.incumbent {
                None => self.space.sample(&mut self.rng),
                Some((cfg, _)) => self.space.mutate(cfg, &mut self.rng),
            };
            if self.seen.insert(self.space.index_of(&candidate)) {
                out.push(candidate);
            }
        }
        out
    }

    fn update(&mut self, batch: &[Vec<usize>], scores: &[f64]) {
        for (cfg, &score) in batch.iter().zip(scores) {
            if !score.is_finite() {
                continue;
            }
            let accept = match &self.incumbent {
                None => true,
                Some((_, best)) => {
                    score < *best || {
                        let delta = (score - best).max(0.0);
                        let p = (-delta / self.temperature.max(1e-9)).exp();
                        self.rng.gen_bool(p.clamp(0.0, 1.0))
                    }
                }
            };
            if accept {
                self.incumbent = Some((cfg.clone(), score));
            }
        }
        self.temperature *= self.cooling;
    }

    fn name(&self) -> &'static str {
        "simulated_annealing"
    }
}

/// AutoTVM-style tuning loop: template configurations are materialized,
/// built, run on `n_parallel` simulators and scored by a trained
/// predictor; invalid configurations receive an infinite score, exactly
/// like failed builds in TVM.
///
/// # Errors
///
/// Propagates pipeline failures; returns [`CoreError::Pipeline`] when
/// the predictor is untrained or the space yields nothing.
pub fn tune_template_space(
    def: &ComputeDef,
    spec: &TargetSpec,
    space: &ConfigSpace,
    predictor: &ScorePredictor,
    tuner: &mut dyn TemplateTuner,
    opts: &TuneOptions,
) -> Result<TuneResult, CoreError> {
    if !predictor.is_trained() {
        return Err(CoreError::Pipeline("predictor is not trained".into()));
    }
    let builder = KernelBuilder::new(def.clone(), spec.isa.clone());
    let sim = SimSession::builder()
        .accurate(&spec.hierarchy)
        .n_parallel(opts.n_parallel)
        .memo_cache_opt(opts.memo_cache.clone())
        .build()?;
    let mut normalizer = WindowNormalizer::new(opts.window);
    let mut history: Vec<TuneRecord> = Vec::new();

    while history.len() < opts.n_trials {
        let want = opts.batch_size.min(opts.n_trials - history.len());
        let batch = tuner.next_batch(want);
        if batch.is_empty() {
            break; // space exhausted
        }
        // Materialize + build; invalid configs keep a slot with +inf.
        let mut exes = Vec::new();
        let mut kept: Vec<(Vec<usize>, simtune_tensor::Schedule)> = Vec::new();
        let mut failed: Vec<Vec<usize>> = Vec::new();
        for cfg in batch {
            match space
                .schedule(def, &cfg)
                .map_err(CoreError::from)
                .and_then(|s| {
                    builder
                        .build(&s, &format!("{}c{}", def.name, history.len()))
                        .map(|e| (s, e))
                }) {
                Ok((s, e)) => {
                    exes.push(e);
                    kept.push((cfg, s));
                }
                Err(_) => failed.push(cfg),
            }
        }
        let stats = sim.run_stats(&exes);
        let mut scored: Vec<(Vec<usize>, Option<simtune_tensor::Schedule>, f64)> = Vec::new();
        for ((cfg, schedule), st) in kept.into_iter().zip(stats) {
            let score = match st {
                Ok(st) => predictor.score_streaming(&st, &mut normalizer)?,
                Err(_) => f64::INFINITY,
            };
            scored.push((cfg, Some(schedule), score));
        }
        for cfg in failed {
            scored.push((cfg, None, f64::INFINITY));
        }
        let cfgs: Vec<Vec<usize>> = scored.iter().map(|(c, _, _)| c.clone()).collect();
        let scores: Vec<f64> = scored.iter().map(|(_, _, s)| *s).collect();
        tuner.update(&cfgs, &scores);
        for (cfg, schedule, score) in scored {
            history.push(TuneRecord {
                description: format!("config {cfg:?}"),
                schedule: schedule.unwrap_or_default(),
                score,
            });
        }
    }
    if history.is_empty() {
        return Err(CoreError::Pipeline("template space yielded nothing".into()));
    }
    let best_index = history
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.score.partial_cmp(&b.1.score).expect("finite or inf"))
        .map(|(i, _)| i)
        .expect("non-empty");
    Ok(TuneResult {
        history,
        best_index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::{collect_group_data, CollectOptions};
    use simtune_predict::PredictorKind;
    use simtune_tensor::matmul;

    fn setup() -> (ComputeDef, TargetSpec, ConfigSpace, ScorePredictor) {
        let def = matmul(8, 8, 8);
        let spec = TargetSpec::riscv_u74();
        let space = ConfigSpace::matmul(&def, &spec.isa);
        let data = collect_group_data(
            &def,
            &spec,
            0,
            &CollectOptions {
                n_impls: 14,
                n_parallel: 2,
                seed: 3,
                max_attempts_factor: 40,
                ..CollectOptions::default()
            },
        )
        .expect("collects");
        let mut predictor = ScorePredictor::new(PredictorKind::LinReg, "riscv", "matmul", 1);
        predictor
            .train(std::slice::from_ref(&data))
            .expect("trains");
        (def, spec, space, predictor)
    }

    #[test]
    fn grid_tuner_enumerates_in_order_without_repeats() {
        let def = matmul(8, 8, 8);
        let space = ConfigSpace::matmul(&def, &simtune_tensor::TargetIsa::riscv_u74());
        let mut t = GridTemplateTuner::new(space.clone());
        let a = t.next_batch(5);
        let b = t.next_batch(5);
        assert_eq!(a.len(), 5);
        assert_eq!(space.index_of(&a[0]), 0);
        assert_eq!(space.index_of(&b[0]), 5);
    }

    #[test]
    fn grid_tuner_stops_at_space_end() {
        let def = matmul(8, 8, 8);
        let space = ConfigSpace::matmul(&def, &simtune_tensor::TargetIsa::riscv_u74());
        let mut t = GridTemplateTuner::new(space.clone());
        let mut total = 0;
        loop {
            let b = t.next_batch(1000);
            if b.is_empty() {
                break;
            }
            total += b.len();
        }
        assert_eq!(total, space.len());
    }

    #[test]
    fn random_tuner_has_no_duplicates() {
        let def = matmul(8, 8, 8);
        let space = ConfigSpace::matmul(&def, &simtune_tensor::TargetIsa::riscv_u74());
        let mut t = RandomTemplateTuner::new(space.clone(), 1);
        let mut seen = HashSet::new();
        for _ in 0..5 {
            for cfg in t.next_batch(10) {
                assert!(seen.insert(space.index_of(&cfg)), "duplicate config");
            }
        }
    }

    #[test]
    fn annealing_tracks_an_incumbent() {
        let def = matmul(8, 8, 8);
        let space = ConfigSpace::matmul(&def, &simtune_tensor::TargetIsa::riscv_u74());
        let mut t = SaTemplateTuner::new(space.clone(), 7);
        // Score = config index (lower index = better).
        for _ in 0..10 {
            let batch = t.next_batch(6);
            if batch.is_empty() {
                break;
            }
            let scores: Vec<f64> = batch.iter().map(|c| space.index_of(c) as f64).collect();
            t.update(&batch, &scores);
        }
        let (_, best) = t.incumbent.expect("has incumbent");
        assert!(best.is_finite());
        assert!(t.temperature < 1.0, "temperature must cool");
    }

    #[test]
    fn template_tuning_end_to_end() {
        let (def, spec, space, predictor) = setup();
        let mut tuner = RandomTemplateTuner::new(space.clone(), 9);
        let result = tune_template_space(
            &def,
            &spec,
            &space,
            &predictor,
            &mut tuner,
            &TuneOptions {
                n_trials: 12,
                batch_size: 4,
                n_parallel: 2,
                ..TuneOptions::default()
            },
        )
        .expect("tunes");
        assert_eq!(result.history.len(), 12);
        assert!(result.best().score.is_finite());
        assert!(result.best().description.starts_with("config"));
    }
}
