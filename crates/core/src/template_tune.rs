//! AutoTVM-flavored tuning over template [`ConfigSpace`]s.
//!
//! The paper's Contribution I covers both TVM flows (its Listings 3
//! and 4): the Auto-Scheduler (sketches, [`crate::autotune`]) and
//! AutoTVM, where "tuners [are] responsible for selecting subsequent
//! programs based on selectable tuning algorithms" (Section II-A). The
//! selectable algorithms are the [`crate::SearchStrategy`]
//! implementations of [`crate::search`], instantiated here over a
//! [`TemplateSpace`](crate::TemplateSpace) — exhaustive grid, uniform
//! random, hill climbing, evolutionary search and simulated annealing
//! all drive the same simulator-backed loop, selected through
//! [`TuneOptions::strategy`].

use crate::backend::SimSession;
use crate::features::WindowNormalizer;
use crate::metrics::StageTimings;
use crate::pool::BatchTicket;
use crate::runner::KernelBuilder;
use crate::score::ScorePredictor;
use crate::search::Evaluation;
use crate::{CoreError, TuneOptions, TuneRecord, TuneResult};
use simtune_hw::TargetSpec;
use simtune_tensor::{ComputeDef, ConfigSpace};
use std::time::Instant;

/// AutoTVM-style tuning loop: template configurations are materialized,
/// built, run on `n_parallel` simulators and scored by a trained
/// predictor; invalid configurations receive an infinite score, exactly
/// like failed builds in TVM. The strategy selected by
/// [`TuneOptions::strategy`] walks the space.
///
/// # Errors
///
/// Propagates pipeline failures; returns [`CoreError::Pipeline`] when
/// the predictor is untrained, the space yields nothing, or the
/// strategy spec cannot drive a template space
/// ([`crate::StrategySpec::Custom`]).
pub fn tune_template_space(
    def: &ComputeDef,
    spec: &TargetSpec,
    space: &ConfigSpace,
    predictor: &ScorePredictor,
    opts: &TuneOptions,
) -> Result<TuneResult, CoreError> {
    if !predictor.is_trained() {
        return Err(CoreError::Pipeline("predictor is not trained".into()));
    }
    let builder = KernelBuilder::new(def.clone(), spec.isa.clone());
    let sim = SimSession::builder()
        .accurate(&spec.hierarchy)
        .n_parallel(opts.n_parallel)
        .memo_cache_opt(opts.memo_cache.clone())
        .engine(opts.engine)
        .build()?;
    let mut strategy = opts.strategy.build_template(space.clone(), opts.seed)?;
    let mut normalizer = WindowNormalizer::new(opts.window);
    let mut history: Vec<TuneRecord> = Vec::new();
    let mut evaluations: Vec<Evaluation<Vec<usize>>> = Vec::new();
    let mut sim_runs = 0usize;
    let mut timings = StageTimings::default();
    let mut replay_nanos = 0u64;
    let pipelined = strategy.pipeline_safe();

    /// A materialized batch whose simulation is in flight.
    struct Staged {
        kept: Vec<(Vec<usize>, simtune_tensor::Schedule)>,
        failed: Vec<Vec<usize>>,
        ticket: BatchTicket,
    }
    impl Staged {
        fn trials(&self) -> usize {
            self.kept.len() + self.failed.len()
        }
    }

    // Same pipelined shape as the sketch loop (`autotune::explore`):
    // score-independent strategies (grid, random) materialize and build
    // batch k+1 while batch k simulates on the session's persistent
    // pool; guided strategies keep strict sequencing. Visit order is
    // identical either way.
    let mut inflight: Option<Staged> = None;
    let mut exhausted = false;
    loop {
        let committed = history.len() + inflight.as_ref().map_or(0, Staged::trials);
        let staged = if !exhausted && committed < opts.n_trials && (pipelined || inflight.is_none())
        {
            let want = opts.batch_size.min(opts.n_trials - committed);
            let t0 = Instant::now();
            let batch = strategy.propose(&evaluations, want);
            timings.propose_nanos += t0.elapsed().as_nanos() as u64;
            if batch.is_empty() {
                exhausted = true; // space exhausted
                None
            } else {
                // Materialize + build; invalid configs keep a slot
                // with +inf.
                let t0 = Instant::now();
                let mut exes = Vec::new();
                let mut kept: Vec<(Vec<usize>, simtune_tensor::Schedule)> = Vec::new();
                let mut failed: Vec<Vec<usize>> = Vec::new();
                for cfg in batch {
                    match space
                        .schedule(def, &cfg)
                        .map_err(CoreError::from)
                        .and_then(|s| {
                            builder
                                .build(&s, &format!("{}c{committed}", def.name))
                                .map(|e| (s, e))
                        }) {
                        Ok((s, e)) => {
                            exes.push(e);
                            kept.push((cfg, s));
                        }
                        Err(_) => failed.push(cfg),
                    }
                }
                timings.build_nanos += t0.elapsed().as_nanos() as u64;
                sim_runs += exes.len();
                let ticket = sim.submit(exes);
                Some(Staged {
                    kept,
                    failed,
                    ticket,
                })
            }
        } else {
            None
        };

        let finished = inflight.take();
        inflight = staged;
        let Some(done) = finished else {
            if inflight.is_none() {
                break;
            }
            continue;
        };

        let t0 = Instant::now();
        let reports = done.ticket.wait();
        timings.sim_nanos += t0.elapsed().as_nanos() as u64;
        let t0 = Instant::now();
        let mut scored: Vec<(Option<simtune_tensor::Schedule>, Evaluation<Vec<usize>>)> =
            Vec::new();
        for ((cfg, schedule), r) in done.kept.into_iter().zip(reports) {
            let score = match r {
                Ok(report) => {
                    replay_nanos += report.stats.host_nanos;
                    predictor.score_streaming(&report.stats, &mut normalizer)?
                }
                Err(_) => f64::INFINITY,
            };
            scored.push((Some(schedule), Evaluation { point: cfg, score }));
        }
        for cfg in done.failed {
            scored.push((
                None,
                Evaluation {
                    point: cfg,
                    score: f64::INFINITY,
                },
            ));
        }
        let batch_evals: Vec<Evaluation<Vec<usize>>> =
            scored.iter().map(|(_, e)| e.clone()).collect();
        strategy.observe(&batch_evals);
        for (schedule, e) in scored {
            history.push(TuneRecord {
                description: format!("config {:?}", e.point),
                schedule: schedule.unwrap_or_default(),
                score: e.score,
            });
        }
        evaluations.extend(batch_evals);
        timings.score_nanos += t0.elapsed().as_nanos() as u64;
    }
    if history.is_empty() {
        return Err(CoreError::Pipeline("template space yielded nothing".into()));
    }
    let best_index = history
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.score.partial_cmp(&b.1.score).expect("finite or inf"))
        .map(|(i, _)| i)
        .expect("non-empty");
    Ok(TuneResult {
        history,
        best_index,
        strategy: strategy.name().to_string(),
        convergence: strategy.convergence(),
        simulations: sim_runs,
        timings,
        predictor: None,
        replay_nanos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::{collect_group_data, CollectOptions};
    use crate::StrategySpec;
    use simtune_predict::PredictorKind;
    use simtune_tensor::matmul;

    fn setup() -> (ComputeDef, TargetSpec, ConfigSpace, ScorePredictor) {
        let def = matmul(8, 8, 8);
        let spec = TargetSpec::riscv_u74();
        let space = ConfigSpace::matmul(&def, &spec.isa);
        let data = collect_group_data(
            &def,
            &spec,
            0,
            &CollectOptions {
                n_impls: 14,
                n_parallel: 2,
                seed: 3,
                max_attempts_factor: 40,
                ..CollectOptions::default()
            },
        )
        .expect("collects");
        let mut predictor = ScorePredictor::new(PredictorKind::LinReg, "riscv", "matmul", 1);
        predictor
            .train(std::slice::from_ref(&data))
            .expect("trains");
        (def, spec, space, predictor)
    }

    #[test]
    fn template_tuning_end_to_end() {
        let (def, spec, space, predictor) = setup();
        let result = tune_template_space(
            &def,
            &spec,
            &space,
            &predictor,
            &TuneOptions {
                n_trials: 12,
                batch_size: 4,
                n_parallel: 2,
                seed: 9,
                ..TuneOptions::default()
            },
        )
        .expect("tunes");
        assert_eq!(result.history.len(), 12);
        assert!(result.best().score.is_finite());
        assert!(result.best().description.starts_with("config"));
        assert_eq!(result.strategy, "random");
        assert_eq!(result.convergence.observed, 12);
    }

    #[test]
    fn grid_strategy_walks_the_template_space_in_order() {
        let (def, spec, space, predictor) = setup();
        let result = tune_template_space(
            &def,
            &spec,
            &space,
            &predictor,
            &TuneOptions {
                n_trials: 6,
                batch_size: 3,
                n_parallel: 2,
                strategy: StrategySpec::Grid,
                ..TuneOptions::default()
            },
        )
        .expect("tunes");
        assert_eq!(result.strategy, "grid");
        // Grid visits configs 0..6 in index order.
        for (i, record) in result.history.iter().enumerate() {
            let cfg = space.config_from_index(i);
            assert_eq!(record.description, format!("config {cfg:?}"));
        }
    }

    #[test]
    fn annealing_strategy_tunes_the_template_space() {
        let (def, spec, space, predictor) = setup();
        let result = tune_template_space(
            &def,
            &spec,
            &space,
            &predictor,
            &TuneOptions {
                n_trials: 12,
                batch_size: 4,
                n_parallel: 2,
                seed: 7,
                strategy: StrategySpec::Annealing,
                ..TuneOptions::default()
            },
        )
        .expect("tunes");
        assert_eq!(result.strategy, "annealing");
        assert_eq!(result.history.len(), 12);
        assert!(result.best().score.is_finite());
    }
}
