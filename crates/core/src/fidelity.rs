//! One name for a fidelity tier: [`FidelitySpec`].
//!
//! Before this module, every layer named tiers its own way — the
//! session builder had one method per tier, the escalation options
//! carried a bare `sample_fraction`, the service protocol shipped
//! loose per-field knobs and the memo cache fingerprinted an ad-hoc
//! `(backend name, fidelity, memo key)` triple. `FidelitySpec` is the
//! single spelling all of them consume:
//!
//! * **grammar** — `tier[:key=value,...]`, e.g. `accurate`,
//!   `fast-count`, `sampled:fraction=0.25`, `pipelined:btb=512,ras=8`;
//!   parsed by [`FromStr`](std::str::FromStr), printed by
//!   [`Display`](std::fmt::Display) in the same canonical form;
//! * **digest** — [`FidelitySpec::digest`] is the canonical string,
//!   covering the tier *and* every parameter, which is what
//!   [`SimBackend::fidelity_digest`](crate::SimBackend::fidelity_digest)
//!   feeds into cache fingerprints;
//! * **construction** — [`FidelitySpec::build`] turns the spec plus a
//!   cache geometry into the matching [`SimBackend`].
//!
//! The shape mirrors [`crate::StrategySpec`], which plays the same role
//! for search strategies.

use crate::backend::{AccurateBackend, FastCountBackend, SampledBackend, SimBackend};
use crate::pipelined::PipelinedBackend;
use crate::CoreError;
use simtune_cache::HierarchyConfig;
use std::fmt;
use std::sync::Arc;

/// Default BTB capacity of the pipelined tier's branch predictor.
pub const DEFAULT_BTB_ENTRIES: usize = 512;
/// Default return-address-stack depth of the pipelined tier.
pub const DEFAULT_RAS_DEPTH: usize = 8;
/// Default sample fraction when `sampled` is named without one.
pub const DEFAULT_SAMPLE_FRACTION: f64 = 0.5;

/// A parsed, canonical name for one simulation fidelity tier.
///
/// The single currency for tier selection: the session builder
/// ([`crate::SimSessionBuilder::fidelity`]), escalated tuning
/// ([`crate::EscalationOptions::explore`]), the service
/// ([`crate::SimService::open_fidelity`] and the serve protocol's
/// `fidelity` field) and the CLI all take one of these, and its
/// [`digest`](FidelitySpec::digest) keys the memo cache.
#[derive(Clone, Debug, PartialEq, Default)]
#[non_exhaustive]
pub enum FidelitySpec {
    /// Instruction-accurate reference simulation with the full cache
    /// model ([`AccurateBackend`]).
    #[default]
    Accurate,
    /// Counting-only tier, no cache model ([`FastCountBackend`]).
    FastCount,
    /// Prefix sampling with linear extrapolation ([`SampledBackend`]).
    Sampled {
        /// Fraction of retired instructions simulated accurately.
        fraction: f64,
    },
    /// 5-stage in-order pipeline timing tier
    /// ([`crate::PipelinedBackend`]).
    Pipelined {
        /// Branch-target-buffer entries of the timing model's predictor.
        btb: usize,
        /// Return-address-stack depth of the timing model's predictor.
        ras: usize,
    },
}

impl FidelitySpec {
    /// Every bundled tier at its default parameters, cheapest-first
    /// below the reference — the fidelity ladder in sweep order.
    pub fn all() -> [FidelitySpec; 4] {
        [
            FidelitySpec::FastCount,
            FidelitySpec::Sampled {
                fraction: DEFAULT_SAMPLE_FRACTION,
            },
            FidelitySpec::Pipelined {
                btb: DEFAULT_BTB_ENTRIES,
                ras: DEFAULT_RAS_DEPTH,
            },
            FidelitySpec::Accurate,
        ]
    }

    /// Short tier label without parameters.
    pub fn label(&self) -> &'static str {
        match self {
            FidelitySpec::Accurate => "accurate",
            FidelitySpec::FastCount => "fast-count",
            FidelitySpec::Sampled { .. } => "sampled",
            FidelitySpec::Pipelined { .. } => "pipelined",
        }
    }

    /// Canonical spec string, parseable back via
    /// [`FromStr`](std::str::FromStr): tier name plus every parameter.
    /// Two specs with equal digests select identical backends.
    pub fn digest(&self) -> String {
        match self {
            FidelitySpec::Accurate => "accurate".into(),
            FidelitySpec::FastCount => "fast-count".into(),
            FidelitySpec::Sampled { fraction } => format!("sampled:fraction={fraction}"),
            FidelitySpec::Pipelined { btb, ras } => format!("pipelined:btb={btb},ras={ras}"),
        }
    }

    /// Instantiates the backend this spec names against `hierarchy`.
    ///
    /// # Errors
    ///
    /// Returns the tier's own configuration error (e.g. an out-of-range
    /// sample fraction) as [`CoreError`].
    pub fn build(&self, hierarchy: &HierarchyConfig) -> Result<Arc<dyn SimBackend>, CoreError> {
        Ok(match self {
            FidelitySpec::Accurate => Arc::new(AccurateBackend::new(hierarchy.clone())),
            FidelitySpec::FastCount => Arc::new(FastCountBackend::matching(hierarchy)),
            FidelitySpec::Sampled { fraction } => {
                Arc::new(SampledBackend::new(hierarchy.clone(), *fraction)?)
            }
            FidelitySpec::Pipelined { btb, ras } => {
                Arc::new(PipelinedBackend::new(hierarchy.clone(), *btb, *ras))
            }
        })
    }
}

impl fmt::Display for FidelitySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.digest())
    }
}

/// Grammar summary appended to every parse error.
const GRAMMAR: &str = "accurate | fast-count | sampled[:fraction=F] | pipelined[:btb=N,ras=N]";

fn bad_spec(msg: String) -> CoreError {
    CoreError::Pipeline(format!("{msg} (expected {GRAMMAR})"))
}

/// Splits `args` (`"k1=v1,k2=v2"`) into key/value pairs.
fn key_values(args: &str) -> Result<Vec<(&str, &str)>, CoreError> {
    args.split(',')
        .filter(|part| !part.trim().is_empty())
        .map(|part| {
            part.split_once('=')
                .map(|(k, v)| (k.trim(), v.trim()))
                .ok_or_else(|| bad_spec(format!("malformed parameter {part:?}")))
        })
        .collect()
}

impl std::str::FromStr for FidelitySpec {
    type Err = CoreError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lowered = s.trim().to_ascii_lowercase();
        let (tier, args) = match lowered.split_once(':') {
            Some((tier, args)) => (tier.trim(), args),
            None => (lowered.as_str(), ""),
        };
        match tier {
            "accurate" | "acc" => {
                if !args.is_empty() {
                    return Err(bad_spec(format!(
                        "tier \"accurate\" takes no parameters, got {args:?}"
                    )));
                }
                Ok(FidelitySpec::Accurate)
            }
            "fast-count" | "fastcount" | "fast" | "count" => {
                if !args.is_empty() {
                    return Err(bad_spec(format!(
                        "tier \"fast-count\" takes no parameters, got {args:?}"
                    )));
                }
                Ok(FidelitySpec::FastCount)
            }
            "sampled" | "sample" => {
                let mut fraction = DEFAULT_SAMPLE_FRACTION;
                for (k, v) in key_values(args)? {
                    match k {
                        "fraction" => {
                            fraction = v.parse().map_err(|_| {
                                bad_spec(format!("fraction must be a number, got {v:?}"))
                            })?;
                        }
                        other => {
                            return Err(bad_spec(format!("unknown sampled parameter {other:?}")))
                        }
                    }
                }
                Ok(FidelitySpec::Sampled { fraction })
            }
            "pipelined" | "pipeline" => {
                let mut btb = DEFAULT_BTB_ENTRIES;
                let mut ras = DEFAULT_RAS_DEPTH;
                for (k, v) in key_values(args)? {
                    let parsed = v
                        .parse()
                        .map_err(|_| bad_spec(format!("{k} must be an integer, got {v:?}")))?;
                    match k {
                        "btb" => btb = parsed,
                        "ras" => ras = parsed,
                        other => {
                            return Err(bad_spec(format!("unknown pipelined parameter {other:?}")))
                        }
                    }
                }
                Ok(FidelitySpec::Pipelined { btb, ras })
            }
            other => Err(bad_spec(format!("unknown fidelity tier {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_round_trips_through_parse() {
        let specs = [
            FidelitySpec::Accurate,
            FidelitySpec::FastCount,
            FidelitySpec::Sampled { fraction: 0.25 },
            FidelitySpec::Pipelined { btb: 64, ras: 2 },
        ];
        for spec in specs {
            let parsed: FidelitySpec = spec.digest().parse().unwrap();
            assert_eq!(parsed, spec, "digest {:?}", spec.digest());
            assert_eq!(spec.to_string(), spec.digest());
        }
    }

    #[test]
    fn parse_accepts_aliases_defaults_and_case() {
        assert_eq!(
            "ACCURATE".parse::<FidelitySpec>().unwrap(),
            FidelitySpec::Accurate
        );
        assert_eq!(
            "fastcount".parse::<FidelitySpec>().unwrap(),
            FidelitySpec::FastCount
        );
        assert_eq!(
            "sampled".parse::<FidelitySpec>().unwrap(),
            FidelitySpec::Sampled {
                fraction: DEFAULT_SAMPLE_FRACTION
            }
        );
        assert_eq!(
            "pipelined".parse::<FidelitySpec>().unwrap(),
            FidelitySpec::Pipelined {
                btb: DEFAULT_BTB_ENTRIES,
                ras: DEFAULT_RAS_DEPTH
            }
        );
        assert_eq!(
            "pipelined:ras=4".parse::<FidelitySpec>().unwrap(),
            FidelitySpec::Pipelined {
                btb: DEFAULT_BTB_ENTRIES,
                ras: 4
            }
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "warp-speed",
            "sampled:fraction=lots",
            "sampled:frac=0.5",
            "pipelined:btb",
            "pipelined:lanes=2",
            "accurate:x=1",
            "fast-count:y=2",
        ] {
            let err = bad.parse::<FidelitySpec>().unwrap_err();
            assert!(
                matches!(err, CoreError::Pipeline(ref m) if m.contains("expected")),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn build_instantiates_the_named_backend() {
        let hier = HierarchyConfig::tiny_for_tests();
        for spec in FidelitySpec::all() {
            let backend = spec.build(&hier).unwrap();
            assert_eq!(backend.name(), spec.label());
        }
        assert!(FidelitySpec::Sampled { fraction: 2.0 }
            .build(&hier)
            .is_err());
    }

    #[test]
    fn default_is_the_reference_tier() {
        assert_eq!(FidelitySpec::default(), FidelitySpec::Accurate);
    }
}
