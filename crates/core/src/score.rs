//! The score predictor: training and inference workflow (paper Fig. 4).
//!
//! One [`ScorePredictor`] is trained per *(architecture, kernel type)*
//! pair and applies to any group (shape/parameter combination) of that
//! kernel type. During training both simulator statistics and measured
//! reference times exist; at execution time only the simulator runs and
//! group means are approximated with windows (Section III-E).

use crate::features::{
    group_training_data, raw_sample, FeatureConfig, GroupMeans, RawSample, WindowKind,
    WindowNormalizer,
};
use crate::CoreError;
use simtune_isa::SimStats;
use simtune_linalg::Matrix;
use simtune_predict::{PredictorKind, Regressor};

/// Everything measured for one kernel group during the training phase.
#[derive(Debug, Clone, Default)]
pub struct GroupData {
    /// Group identifier (index into Table II for the paper's kernels).
    pub group_id: usize,
    /// Instruction-accurate statistics per implementation.
    pub stats: Vec<SimStats>,
    /// Measured reference times per implementation (median of `N_exe`).
    pub t_ref: Vec<f64>,
    /// Noise-free model times (diagnostics only; never used for training).
    pub base_seconds: Vec<f64>,
    /// Host wall-clock seconds each simulation took (`t_simulator`).
    pub sim_seconds: Vec<f64>,
    /// Human-readable schedule descriptions per implementation.
    pub descriptions: Vec<String>,
}

impl GroupData {
    /// Number of implementations collected.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// True when no implementations were collected.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Returns a copy containing only the selected indices.
    pub fn subset(&self, indices: &[usize]) -> GroupData {
        GroupData {
            group_id: self.group_id,
            stats: indices.iter().map(|&i| self.stats[i].clone()).collect(),
            t_ref: indices.iter().map(|&i| self.t_ref[i]).collect(),
            base_seconds: indices
                .iter()
                .filter_map(|&i| self.base_seconds.get(i).copied())
                .collect(),
            sim_seconds: indices
                .iter()
                .filter_map(|&i| self.sim_seconds.get(i).copied())
                .collect(),
            descriptions: indices
                .iter()
                .filter_map(|&i| self.descriptions.get(i).cloned())
                .collect(),
        }
    }
}

/// A trainable score predictor for one architecture and kernel type.
///
/// # Example
///
/// See `examples/predictor_comparison.rs` for the end-to-end flow; unit
/// usage:
///
/// ```
/// use simtune_core::{GroupData, ScorePredictor};
/// use simtune_isa::{InstMix, SimStats};
/// use simtune_predict::PredictorKind;
///
/// # fn main() -> Result<(), simtune_core::CoreError> {
/// // Synthetic group: runtime proportional to load ratio.
/// let mk = |loads: u64| SimStats {
///     inst_mix: InstMix { loads, int_alu: 100, ..Default::default() },
///     ..Default::default()
/// };
/// let group = GroupData {
///     group_id: 0,
///     stats: (1..40).map(|i| mk(i * 10)).collect(),
///     t_ref: (1..40).map(|i| i as f64).collect(),
///     ..Default::default()
/// };
/// let mut p = ScorePredictor::new(PredictorKind::LinReg, "riscv", "demo", 1);
/// p.train(&[group.clone()])?;
/// let scores = p.score_group(&group.stats)?;
/// assert!(scores[0] < scores[30], "scores must follow runtimes");
/// # Ok(())
/// # }
/// ```
pub struct ScorePredictor {
    kind: PredictorKind,
    arch: String,
    kernel_type: String,
    feature_config: FeatureConfig,
    model: Box<dyn Regressor>,
    trained: bool,
}

impl std::fmt::Debug for ScorePredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScorePredictor")
            .field("kind", &self.kind)
            .field("arch", &self.arch)
            .field("kernel_type", &self.kernel_type)
            .field("trained", &self.trained)
            .finish()
    }
}

impl ScorePredictor {
    /// Creates an untrained predictor of `kind` for one architecture and
    /// kernel type, with the paper's tuned model configuration.
    pub fn new(kind: PredictorKind, arch: &str, kernel_type: &str, seed: u64) -> Self {
        ScorePredictor {
            kind,
            arch: arch.to_string(),
            kernel_type: kernel_type.to_string(),
            feature_config: FeatureConfig::default(),
            model: kind.build(seed),
            trained: false,
        }
    }

    /// Replaces the feature configuration (ablation experiments).
    pub fn with_feature_config(mut self, config: FeatureConfig) -> Self {
        self.feature_config = config;
        self
    }

    /// The predictor family.
    pub fn kind(&self) -> PredictorKind {
        self.kind
    }

    /// The architecture this predictor is trained for.
    pub fn arch(&self) -> &str {
        &self.arch
    }

    /// The kernel type this predictor is trained for.
    pub fn kernel_type(&self) -> &str {
        &self.kernel_type
    }

    /// True once [`ScorePredictor::train`] succeeded.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// The feature configuration in use.
    pub fn feature_config(&self) -> &FeatureConfig {
        &self.feature_config
    }

    /// Trains on complete groups: features use exact group means, labels
    /// are group-normalized reference times (training phase of Fig. 4).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Pipeline`] for empty input and propagates
    /// model fitting failures.
    pub fn train(&mut self, groups: &[GroupData]) -> Result<(), CoreError> {
        if groups.iter().all(|g| g.is_empty()) {
            return Err(CoreError::Pipeline(
                "training requires at least one non-empty group".into(),
            ));
        }
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut labels: Vec<f64> = Vec::new();
        for g in groups.iter().filter(|g| !g.is_empty()) {
            let (x, y) = group_training_data(&g.stats, &g.t_ref, &self.feature_config);
            for i in 0..x.rows() {
                rows.push(x.row(i).to_vec());
            }
            labels.extend(y);
        }
        let x = Matrix::from_rows(&rows)
            .map_err(|e| CoreError::Pipeline(format!("feature matrix: {e}")))?;
        self.model.fit(&x, &labels)?;
        self.trained = true;
        Ok(())
    }

    /// Scores a complete group using exact means over the given set (the
    /// evaluation setting of Tables III–V).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Predict`] for an untrained model.
    pub fn score_group(&self, stats: &[SimStats]) -> Result<Vec<f64>, CoreError> {
        let raws: Vec<RawSample> = stats
            .iter()
            .map(|s| raw_sample(s, &self.feature_config))
            .collect();
        if raws.is_empty() {
            return Ok(Vec::new());
        }
        let means = GroupMeans::exact(&raws);
        let rows: Vec<Vec<f64>> = raws
            .iter()
            .map(|r| means.features(r, &self.feature_config))
            .collect();
        let x = Matrix::from_rows(&rows)
            .map_err(|e| CoreError::Pipeline(format!("feature matrix: {e}")))?;
        Ok(self.model.predict(&x)?)
    }

    /// Scores a stream of implementations as the Auto-Scheduler delivers
    /// them, approximating group means with the given window (execution
    /// phase of Fig. 4, Section III-E). Each sample is scored with the
    /// means in effect when it arrives.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Predict`] for an untrained model.
    pub fn score_with_window(
        &self,
        stats: &[SimStats],
        window: WindowKind,
    ) -> Result<Vec<f64>, CoreError> {
        let mut normalizer = WindowNormalizer::new(window);
        stats
            .iter()
            .map(|s| self.score_streaming(s, &mut normalizer))
            .collect()
    }

    /// Scores a single new implementation against an externally owned
    /// window normalizer (the incremental form of
    /// [`ScorePredictor::score_with_window`] used by the tuning loop,
    /// which interleaves batches from the tuner).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Predict`] for an untrained model.
    pub fn score_streaming(
        &self,
        stats: &SimStats,
        normalizer: &mut WindowNormalizer,
    ) -> Result<f64, CoreError> {
        let raw = raw_sample(stats, &self.feature_config);
        normalizer.feed(&raw);
        let features = normalizer.features(&raw, &self.feature_config);
        self.score_features(&features)
    }

    /// Scores one already-normalized feature row — the low-level half
    /// of [`ScorePredictor::score_streaming`], for callers that manage
    /// their own [`WindowNormalizer`] stream and need the model's score
    /// for a feature vector they extracted themselves (the
    /// uncertainty-escalation loop shares one fed sample between its
    /// online model and this provisional score).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Predict`] when the row's width does not
    /// match the trained model, [`CoreError::Pipeline`] when the row is
    /// malformed.
    pub fn score_features(&self, features: &[f64]) -> Result<f64, CoreError> {
        let x = Matrix::from_rows(&[features.to_vec()])
            .map_err(|e| CoreError::Pipeline(format!("feature row: {e}")))?;
        Ok(self.model.predict(&x)?[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtune_isa::InstMix;

    fn synthetic_group(n: usize, slope: f64, seed: u64) -> GroupData {
        // Runtime depends nonlinearly on two "ratios" we control through
        // loads and branches.
        let mut stats = Vec::new();
        let mut t = Vec::new();
        for i in 0..n {
            let x = ((i as u64).wrapping_mul(seed * 2 + 1) % 97) as f64 / 97.0;
            let loads = (x * 1000.0) as u64 + 10;
            let branches = ((1.0 - x) * 300.0) as u64 + 5;
            stats.push(SimStats {
                inst_mix: InstMix {
                    loads,
                    branches,
                    int_alu: 2000,
                    ..Default::default()
                },
                ..Default::default()
            });
            t.push(1.0 + slope * x + 0.3 * x * x);
        }
        GroupData {
            group_id: 0,
            stats,
            t_ref: t,
            ..Default::default()
        }
    }

    #[test]
    fn train_and_score_orders_by_runtime() {
        let g = synthetic_group(60, 2.0, 3);
        let mut p = ScorePredictor::new(PredictorKind::Xgboost, "x86", "synthetic", 1);
        p.train(std::slice::from_ref(&g)).unwrap();
        assert!(p.is_trained());
        let scores = p.score_group(&g.stats).unwrap();
        let rho = simtune_linalg::stats::spearman(&scores, &g.t_ref);
        assert!(rho > 0.9, "rank correlation {rho}");
    }

    #[test]
    fn window_scoring_approaches_exact_scoring() {
        let g = synthetic_group(80, 1.5, 5);
        let mut p = ScorePredictor::new(PredictorKind::LinReg, "arm", "synthetic", 2);
        p.train(std::slice::from_ref(&g)).unwrap();
        let exact = p.score_group(&g.stats).unwrap();
        let dynamic = p.score_with_window(&g.stats, WindowKind::Dynamic).unwrap();
        let static_w = p
            .score_with_window(&g.stats, WindowKind::Static(20))
            .unwrap();
        // Orders agree strongly even if absolute scores differ slightly.
        let rho_d = simtune_linalg::stats::spearman(&exact, &dynamic);
        let rho_s = simtune_linalg::stats::spearman(&exact, &static_w);
        assert!(rho_d > 0.85, "dynamic window correlation {rho_d}");
        assert!(rho_s > 0.85, "static window correlation {rho_s}");
    }

    #[test]
    fn untrained_predictor_errors() {
        let p = ScorePredictor::new(PredictorKind::LinReg, "x86", "t", 0);
        let g = synthetic_group(5, 1.0, 1);
        assert!(p.score_group(&g.stats).is_err());
    }

    #[test]
    fn empty_training_is_a_pipeline_error() {
        let mut p = ScorePredictor::new(PredictorKind::LinReg, "x86", "t", 0);
        assert!(matches!(
            p.train(&[GroupData::default()]),
            Err(CoreError::Pipeline(_))
        ));
    }

    #[test]
    fn subset_extracts_matching_slices() {
        let g = synthetic_group(10, 1.0, 2);
        let s = g.subset(&[1, 3, 5]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.t_ref[1], g.t_ref[3]);
        assert_eq!(s.stats[2].inst_mix, g.stats[5].inst_mix);
    }

    #[test]
    fn generalizes_across_groups_of_same_kernel_type() {
        // Train on one group, score a *different* group (different
        // runtime scale): rank correlation must survive because features
        // and labels are group-normalized.
        let train = synthetic_group(60, 2.0, 3);
        let mut other = synthetic_group(60, 2.0, 9);
        for t in &mut other.t_ref {
            *t *= 50.0; // a much slower group
        }
        let mut p = ScorePredictor::new(PredictorKind::Xgboost, "x86", "synthetic", 4);
        p.train(std::slice::from_ref(&train)).unwrap();
        let scores = p.score_group(&other.stats).unwrap();
        let rho = simtune_linalg::stats::spearman(&scores, &other.t_ref);
        assert!(rho > 0.8, "cross-group correlation {rho}");
    }
}
