//! Pluggable simulator backends: the typed successor of the
//! function-registry override (paper Listings 3–4).
//!
//! The paper's claim is that the autotuner's runner is
//! *simulator-agnostic*: anything that can execute a candidate and
//! report statistics may sit behind `auto_scheduler.local_runner.run`,
//! trading fidelity for speed. This module turns that claim into a
//! first-class API built around three pieces:
//!
//! * [`SimBackend`] — the trait every simulator flavor implements:
//!   `run_batch(&[Executable], &RunLimits) -> Vec<Result<SimReport, _>>`;
//! * [`BackendRegistry`] — a typed, named registry replacing the
//!   stringly [`crate::FunctionRegistry`] (which survives as a thin
//!   deprecated shim on top of this);
//! * [`SimSession`] — a builder-style entry point that pairs one
//!   backend with a parallelism degree, run limits and an optional
//!   [`SimCache`], re-exported from the `simtune` façade. Sessions
//!   pre-decode every candidate once ([`Executable::decode`]) and feed
//!   backends through [`SimBackend::run_one_decoded`]; with a cache
//!   attached, revisited candidates skip the backend entirely.
//!
//! # Fidelity tiers
//!
//! Three backends ship with the crate; pick by what a tuning round
//! needs:
//!
//! | backend | fidelity | cost | use when |
//! |---|---|---|---|
//! | [`AccurateBackend`] | cache-accurate ([`Fidelity::Accurate`]) | 1× | final ranking, training-data collection — the gem5-style reference |
//! | [`FastCountBackend`] | counts only ([`Fidelity::CountOnly`]) | ≪1× | early exploration rounds where instruction/access totals are enough to discard bad candidates (QEMU-plugin instrumentation style) |
//! | [`SampledBackend`] | extrapolated ([`Fidelity::Sampled`]) | count + fraction·accurate | middle ground: cache behavior matters but a prefix of the run is representative (Pac-Sim-style sampling) |
//! | [`crate::PipelinedBackend`] | cycle-level timing ([`Fidelity::Pipelined`]) | >1× | candidates whose ranking depends on hazards, branch behavior or prefetch, not just counts — reports a per-trial [`simtune_hw::CycleBreakdown`] |
//!
//! Tiers are *named* uniformly by [`crate::FidelitySpec`]: parse a spec
//! string (`"pipelined:btb=512,ras=8"`), hand it to
//! [`SimSessionBuilder::fidelity`], and the same digest keys the memo
//! cache and the service protocol.
//!
//! `SampledBackend` sizes each candidate with a counting pass before
//! simulating the prefix, so its cost is the fast-count cost *plus* the
//! chosen fraction of the accurate cost — cheaper than accurate only
//! when the cache model (not raw interpretation) dominates.
//!
//! [`crate::tune_with_fidelity_escalation`] composes the tiers: a cheap
//! backend explores the schedule space and [`AccurateBackend`] re-ranks
//! only the top-k finalists.
//!
//! # Example
//!
//! ```
//! use simtune_cache::HierarchyConfig;
//! use simtune_core::{KernelBuilder, SimSession};
//! use simtune_tensor::{matmul, Schedule, TargetIsa};
//!
//! # fn main() -> Result<(), simtune_core::CoreError> {
//! let def = matmul(8, 8, 8);
//! let builder = KernelBuilder::new(def.clone(), TargetIsa::riscv_u74());
//! let exe = builder.build(&Schedule::default_for(&def), "mm")?;
//! let session = SimSession::builder()
//!     .fast_count(&HierarchyConfig::riscv_u74())
//!     .n_parallel(2)
//!     .build()?;
//! let reports = session.run(std::slice::from_ref(&exe));
//! let report = reports[0].as_ref().unwrap();
//! assert_eq!(report.backend, "fast-count");
//! assert!(report.stats.inst_mix.total() > 0);
//! # Ok(())
//! # }
//! ```

use crate::memo::SimCache;
use crate::metrics::WorkerPoolStats;
use crate::pool::{Batch, BatchCtx, BatchTicket, InflightMap, WorkerPool};
use crate::runner::SimulatorRunFn;
use crate::CoreError;
use simtune_cache::{CacheConfig, CacheStats, HierarchyConfig, HierarchyStats};
use simtune_hw::CycleBreakdown;
use simtune_isa::{
    simulate_batch_decoded, simulate_counting_batch_decoded, simulate_counting_decoded,
    simulate_counting_decoded_on, simulate_decoded, simulate_decoded_on,
    simulate_prefix_decoded_on, DecodedProgram, EngineKind, Executable, InstMix, RunLimits,
    SimError, SimStats, ACCURATE, FAST_COUNT,
};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Canonical name of the sampled (prefix + extrapolation) flavor.
pub const SAMPLED: &str = "sampled";

/// How faithful a backend's statistics are to the reference simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Fidelity {
    /// Full instruction-accurate simulation with the cache model.
    Accurate,
    /// Instruction and memory-access counting only; no cache model.
    CountOnly,
    /// A fraction of the run is simulated accurately and the statistics
    /// are linearly extrapolated to the full run.
    Sampled {
        /// Target fraction of retired instructions simulated accurately.
        fraction: f64,
    },
    /// Full instruction-accurate simulation driving a 5-stage in-order
    /// pipeline timing model: architectural statistics are bit-identical
    /// to [`Fidelity::Accurate`] and the report additionally carries a
    /// deterministic cycle breakdown ([`SimReport::cycles`]).
    Pipelined,
    /// An external override whose fidelity is unknown to this crate.
    Custom,
    /// Statistics come from a cheap counting tier but the *score* is
    /// answered by a learned model trained online on observed reports —
    /// the tier below all simulating ones ([`crate::PredictedBackend`]).
    Predicted,
}

impl fmt::Display for Fidelity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fidelity::Accurate => write!(f, "accurate"),
            Fidelity::CountOnly => write!(f, "count-only"),
            Fidelity::Sampled { fraction } => write!(f, "sampled({fraction})"),
            Fidelity::Pipelined => write!(f, "pipelined"),
            Fidelity::Custom => write!(f, "custom"),
            Fidelity::Predicted => write!(f, "predicted"),
        }
    }
}

/// Errors a backend can produce for one executable.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BackendError {
    /// The underlying simulation aborted.
    Sim(SimError),
    /// The backend was configured inconsistently.
    Config {
        /// Which backend rejected its configuration.
        backend: String,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Sim(e) => write!(f, "backend simulation failed: {e}"),
            BackendError::Config { backend, message } => {
                write!(f, "backend {backend:?} misconfigured: {message}")
            }
        }
    }
}

impl Error for BackendError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BackendError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for BackendError {
    fn from(e: SimError) -> Self {
        BackendError::Sim(e)
    }
}

/// What one backend invocation reports for one executable.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Simulator statistics (possibly extrapolated, see `extrapolated`).
    pub stats: SimStats,
    /// Name of the backend that produced the statistics.
    pub backend: String,
    /// Fidelity tier of the producing backend.
    pub fidelity: Fidelity,
    /// True when `stats` was scaled up from a partial run rather than
    /// measured over the whole program.
    pub extrapolated: bool,
    /// Cycle accounting of the timing layer, present only for tiers
    /// that model one ([`Fidelity::Pipelined`]). Deterministic: the
    /// same candidate yields byte-identical breakdowns at every
    /// parallelism degree and replay engine.
    pub cycles: Option<CycleBreakdown>,
}

impl SimReport {
    fn full(stats: SimStats, backend: &str, fidelity: Fidelity) -> Self {
        SimReport {
            stats,
            backend: backend.to_string(),
            fidelity,
            extrapolated: false,
            cycles: None,
        }
    }
}

/// A pluggable simulator: the typed form of the paper's overridable
/// `simulator_run` hook.
///
/// Implementations must be shareable across the runner's `n_parallel`
/// worker threads, hence `Send + Sync`; per-run state (CPU, memory,
/// cache hierarchy) is created inside [`SimBackend::run_one`] so every
/// candidate starts cold, exactly like the function-pointer era.
pub trait SimBackend: Send + Sync {
    /// Stable name used as the registry key and stamped on every
    /// [`SimReport`] / [`simtune_isa::SimOutcome`].
    fn name(&self) -> &str;

    /// The fidelity tier this backend provides.
    fn fidelity(&self) -> Fidelity;

    /// Runs one executable.
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`] when the simulation aborts or the
    /// backend is misconfigured for this executable.
    fn run_one(&self, exe: &Executable, limits: &RunLimits) -> Result<SimReport, BackendError>;

    /// Runs one executable whose program was already lowered with
    /// [`Executable::decode`]. [`SimSession`] decodes each candidate
    /// exactly once per batch and calls this, so backends that execute
    /// the program more than once per report (e.g. the sampling tier's
    /// sizing pass plus prefix pass) replay the same µop array instead
    /// of re-decoding. The default ignores the handle and delegates to
    /// [`SimBackend::run_one`] — correct for external backends that
    /// drive their own simulator.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SimBackend::run_one`].
    fn run_one_decoded(
        &self,
        exe: &Executable,
        decoded: &DecodedProgram,
        limits: &RunLimits,
    ) -> Result<SimReport, BackendError> {
        let _ = decoded;
        self.run_one(exe, limits)
    }

    /// [`SimBackend::run_one_decoded`] with an explicit replay
    /// [`EngineKind`]. Sessions route every trial through this so the
    /// configured engine (`SimSessionBuilder::engine`) reaches the
    /// simulator. The default ignores the engine and delegates to
    /// [`SimBackend::run_one_decoded`] — correct for external backends
    /// that drive their own simulator and have no notion of the bundled
    /// replay ladder. All bundled engines are bit-identical, so honoring
    /// the engine changes host speed only, never statistics.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SimBackend::run_one`].
    fn run_one_decoded_on(
        &self,
        exe: &Executable,
        decoded: &DecodedProgram,
        limits: &RunLimits,
        engine: EngineKind,
    ) -> Result<SimReport, BackendError> {
        let _ = engine;
        self.run_one_decoded(exe, decoded, limits)
    }

    /// True when [`SimBackend::run_soa_batch`] is cheaper than N calls
    /// to [`SimBackend::run_one_decoded`] — i.e. the backend has a real
    /// lane-parallel (structure-of-arrays) replay path. Sessions
    /// configured with [`EngineKind::Batch`] group same-program trials
    /// into one SoA batch only when this returns true; the default is
    /// `false`, so external backends keep per-trial execution.
    fn supports_soa_batch(&self) -> bool {
        false
    }

    /// Replays `exes` — trials of the *same* decoded program differing
    /// only in their data segments — as lanes of one batched run,
    /// returning one report per trial in input order. Only called when
    /// [`SimBackend::supports_soa_batch`] is true; the default falls
    /// back to sequential per-trial execution so overriding the
    /// capability probe alone cannot produce wrong results.
    fn run_soa_batch(
        &self,
        exes: &[&Executable],
        decoded: &DecodedProgram,
        limits: &RunLimits,
    ) -> Vec<Result<SimReport, BackendError>> {
        exes.iter()
            .map(|exe| self.run_one_decoded(exe, decoded, limits))
            .collect()
    }

    /// Configuration digest for the memoization layer, or `None` to opt
    /// out of memoization (the default). A backend that returns
    /// `Some(digest)` asserts its reports are a pure function of
    /// (program, data, target, limits, digest) — the [`SimCache`] may
    /// then replay stored reports instead of re-executing. The digest
    /// must cover every configuration knob that changes results (cache
    /// geometry, sampling fraction, ...).
    fn memo_key(&self) -> Option<String> {
        None
    }

    /// Canonical fidelity digest for the memoization layer: one string
    /// naming the tier *and* every configuration knob that changes
    /// results — the cache-fingerprint form of [`crate::FidelitySpec`].
    /// `None` (when [`SimBackend::memo_key`] is `None`) opts out of
    /// memoization. The default composes name, fidelity and memo key;
    /// bundled backends override it with their spec-grammar digest
    /// (e.g. `"pipelined:btb=512,ras=8 @ l1d=..."`).
    fn fidelity_digest(&self) -> Option<String> {
        self.memo_key()
            .map(|k| format!("{} {} [{k}]", self.name(), self.fidelity()))
    }

    /// Runs a batch sequentially, preserving order. Backends with a
    /// cheaper batch path (shared warm-up, vectorized dispatch) may
    /// override this for direct callers; [`SimSession`] itself always
    /// drives [`SimBackend::run_one_decoded`] per candidate so decoding
    /// and memoization stay per-executable.
    fn run_batch(
        &self,
        execs: &[Executable],
        limits: &RunLimits,
    ) -> Vec<Result<SimReport, BackendError>> {
        execs.iter().map(|e| self.run_one(e, limits)).collect()
    }
}

/// Canonical digest of a cache geometry for [`SimBackend::memo_key`]:
/// two hierarchies with equal digests model identical cache behavior.
fn cache_digest(c: &CacheConfig) -> String {
    format!(
        "{}s{}w{}l{:?}",
        c.num_sets, c.associativity, c.line_bytes, c.policy
    )
}

pub(crate) fn hierarchy_digest(h: &HierarchyConfig) -> String {
    let l3 = h.l3.as_ref().map_or("none".into(), cache_digest);
    format!(
        "l1d={} l1i={} l2={} l3={}",
        cache_digest(&h.l1d),
        cache_digest(&h.l1i),
        cache_digest(&h.l2),
        l3
    )
}

/// The reference backend: today's instruction-accurate interpreter with
/// the full set-associative cache hierarchy (the gem5 stand-in).
#[derive(Debug, Clone)]
pub struct AccurateBackend {
    hierarchy: HierarchyConfig,
}

impl AccurateBackend {
    /// Accurate backend replicating `hierarchy` per instance.
    pub fn new(hierarchy: HierarchyConfig) -> Self {
        AccurateBackend { hierarchy }
    }

    /// The cache geometry each simulator instance models.
    pub fn hierarchy(&self) -> &HierarchyConfig {
        &self.hierarchy
    }
}

impl SimBackend for AccurateBackend {
    fn name(&self) -> &str {
        ACCURATE
    }

    fn fidelity(&self) -> Fidelity {
        Fidelity::Accurate
    }

    fn run_one(&self, exe: &Executable, limits: &RunLimits) -> Result<SimReport, BackendError> {
        let decoded = exe.decode()?;
        self.run_one_decoded(exe, &decoded, limits)
    }

    fn run_one_decoded(
        &self,
        exe: &Executable,
        decoded: &DecodedProgram,
        limits: &RunLimits,
    ) -> Result<SimReport, BackendError> {
        let out = simulate_decoded(exe, decoded, &self.hierarchy, *limits)?;
        Ok(SimReport::full(out.stats, ACCURATE, Fidelity::Accurate))
    }

    fn run_one_decoded_on(
        &self,
        exe: &Executable,
        decoded: &DecodedProgram,
        limits: &RunLimits,
        engine: EngineKind,
    ) -> Result<SimReport, BackendError> {
        let out = simulate_decoded_on(exe, decoded, &self.hierarchy, *limits, engine)?;
        Ok(SimReport::full(out.stats, ACCURATE, Fidelity::Accurate))
    }

    fn supports_soa_batch(&self) -> bool {
        true
    }

    fn run_soa_batch(
        &self,
        exes: &[&Executable],
        decoded: &DecodedProgram,
        limits: &RunLimits,
    ) -> Vec<Result<SimReport, BackendError>> {
        simulate_batch_decoded(exes, decoded, &self.hierarchy, *limits)
            .into_iter()
            .map(|r| {
                let out = r?;
                Ok(SimReport::full(out.stats, ACCURATE, Fidelity::Accurate))
            })
            .collect()
    }

    fn memo_key(&self) -> Option<String> {
        Some(hierarchy_digest(&self.hierarchy))
    }

    fn fidelity_digest(&self) -> Option<String> {
        Some(format!("accurate @ {}", hierarchy_digest(&self.hierarchy)))
    }
}

/// QEMU-plugin-style counting backend: candidates execute functionally
/// and retired instructions plus line-granular memory accesses are
/// tallied, but no cache is modeled. Retired-instruction counts are
/// bit-identical to [`AccurateBackend`]'s; cache hit/miss counters are
/// absent (every access reports as an L1 miss). Use it for cheap early
/// autotuning rounds where candidate ranking by work volume suffices.
#[derive(Debug, Clone)]
pub struct FastCountBackend {
    line_bytes: u64,
}

impl FastCountBackend {
    /// Counting backend with the given line size (drives how many lines
    /// a vector access touches; must match the reference hierarchy for
    /// access counts to be comparable).
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    pub fn new(line_bytes: u64) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line_bytes must be a power of two"
        );
        FastCountBackend { line_bytes }
    }

    /// Counting backend whose line size matches `hierarchy`.
    pub fn matching(hierarchy: &HierarchyConfig) -> Self {
        FastCountBackend::new(hierarchy.line_bytes())
    }
}

impl SimBackend for FastCountBackend {
    fn name(&self) -> &str {
        FAST_COUNT
    }

    fn fidelity(&self) -> Fidelity {
        Fidelity::CountOnly
    }

    fn run_one(&self, exe: &Executable, limits: &RunLimits) -> Result<SimReport, BackendError> {
        let decoded = exe.decode()?;
        self.run_one_decoded(exe, &decoded, limits)
    }

    fn run_one_decoded(
        &self,
        exe: &Executable,
        decoded: &DecodedProgram,
        limits: &RunLimits,
    ) -> Result<SimReport, BackendError> {
        let out = simulate_counting_decoded(exe, decoded, self.line_bytes, *limits)?;
        Ok(SimReport::full(out.stats, FAST_COUNT, Fidelity::CountOnly))
    }

    fn run_one_decoded_on(
        &self,
        exe: &Executable,
        decoded: &DecodedProgram,
        limits: &RunLimits,
        engine: EngineKind,
    ) -> Result<SimReport, BackendError> {
        let out = simulate_counting_decoded_on(exe, decoded, self.line_bytes, *limits, engine)?;
        Ok(SimReport::full(out.stats, FAST_COUNT, Fidelity::CountOnly))
    }

    fn supports_soa_batch(&self) -> bool {
        true
    }

    fn run_soa_batch(
        &self,
        exes: &[&Executable],
        decoded: &DecodedProgram,
        limits: &RunLimits,
    ) -> Vec<Result<SimReport, BackendError>> {
        simulate_counting_batch_decoded(exes, decoded, self.line_bytes, *limits)
            .into_iter()
            .map(|r| {
                let out = r?;
                Ok(SimReport::full(out.stats, FAST_COUNT, Fidelity::CountOnly))
            })
            .collect()
    }

    fn memo_key(&self) -> Option<String> {
        Some(format!("line_bytes={}", self.line_bytes))
    }

    fn fidelity_digest(&self) -> Option<String> {
        Some(format!("fast-count @ line_bytes={}", self.line_bytes))
    }
}

/// Pac-Sim-inspired sampling backend: a cheap counting pass sizes the
/// candidate, then only `fraction` of its retired instructions are
/// simulated with the full cache model and the statistics are linearly
/// extrapolated to the whole run. At `fraction == 1.0` the prefix covers
/// the entire program and the result equals [`AccurateBackend`]'s
/// exactly (modulo host wall-clock time).
///
/// Host cost is the counting pass plus `fraction` of the accurate cost
/// (not `fraction` alone): the sizing pass interprets every instruction
/// once, without the cache model. The tier pays off when cache modeling
/// dominates the accurate backend's runtime.
#[derive(Debug, Clone)]
pub struct SampledBackend {
    hierarchy: HierarchyConfig,
    fraction: f64,
    min_insts: u64,
}

impl SampledBackend {
    /// Sampling backend simulating `fraction ∈ (0, 1]` of each candidate
    /// accurately.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Config`] for a non-finite or out-of-range
    /// fraction.
    pub fn new(hierarchy: HierarchyConfig, fraction: f64) -> Result<Self, BackendError> {
        if !fraction.is_finite() || fraction <= 0.0 || fraction > 1.0 {
            return Err(BackendError::Config {
                backend: SAMPLED.into(),
                message: format!("sample fraction must be in (0, 1], got {fraction}"),
            });
        }
        Ok(SampledBackend {
            hierarchy,
            fraction,
            min_insts: 1_000,
        })
    }

    /// Floor on the accurately simulated prefix, so tiny fractions of
    /// tiny kernels still see a meaningful window (default 1000).
    pub fn with_min_insts(mut self, min_insts: u64) -> Self {
        self.min_insts = min_insts;
        self
    }

    /// The configured sample fraction.
    pub fn fraction(&self) -> f64 {
        self.fraction
    }
}

impl SimBackend for SampledBackend {
    fn name(&self) -> &str {
        SAMPLED
    }

    fn fidelity(&self) -> Fidelity {
        Fidelity::Sampled {
            fraction: self.fraction,
        }
    }

    fn run_one(&self, exe: &Executable, limits: &RunLimits) -> Result<SimReport, BackendError> {
        let decoded = exe.decode()?;
        self.run_one_decoded(exe, &decoded, limits)
    }

    // Two passes over the same program; the shared pre-decoded handle is
    // exactly what makes the sizing pass nearly free of dispatch setup.
    fn run_one_decoded(
        &self,
        exe: &Executable,
        decoded: &DecodedProgram,
        limits: &RunLimits,
    ) -> Result<SimReport, BackendError> {
        self.run_one_decoded_on(exe, decoded, limits, EngineKind::Decoded)
    }

    // Engine selection applies to both passes: the sizing count and the
    // accurately simulated prefix replay on the same engine.
    fn run_one_decoded_on(
        &self,
        exe: &Executable,
        decoded: &DecodedProgram,
        limits: &RunLimits,
        engine: EngineKind,
    ) -> Result<SimReport, BackendError> {
        // Counting pass: total work, at a fraction of the accurate cost.
        let count = simulate_counting_decoded_on(
            exe,
            decoded,
            self.hierarchy.line_bytes(),
            *limits,
            engine,
        )?;
        let total = count.stats.inst_mix.total();
        let budget = ((total as f64 * self.fraction).ceil() as u64)
            .max(self.min_insts)
            .max(1);
        let (out, completed) =
            simulate_prefix_decoded_on(exe, decoded, &self.hierarchy, *limits, budget, engine)?;
        let fidelity = Fidelity::Sampled {
            fraction: self.fraction,
        };
        if completed {
            return Ok(SimReport::full(out.stats, SAMPLED, fidelity));
        }
        let retired = out.stats.inst_mix.total().max(1);
        Ok(SimReport {
            stats: extrapolate(&out.stats, total, retired),
            backend: SAMPLED.into(),
            fidelity,
            extrapolated: true,
            cycles: None,
        })
    }

    fn memo_key(&self) -> Option<String> {
        Some(format!(
            "{} fraction={} min_insts={}",
            hierarchy_digest(&self.hierarchy),
            self.fraction,
            self.min_insts
        ))
    }

    fn fidelity_digest(&self) -> Option<String> {
        Some(format!(
            "sampled:fraction={} @ {} min_insts={}",
            self.fraction,
            hierarchy_digest(&self.hierarchy),
            self.min_insts
        ))
    }
}

/// Linearly scales every counter of a prefix run by `total / retired`.
/// Host wall time is kept as measured: the whole point of sampling is
/// that the *host* paid only for the prefix. `pub(crate)` so the
/// differential harness can recompute the sampled tier's expected
/// output from an accurate prefix and compare bit-exactly.
pub(crate) fn extrapolate(prefix: &SimStats, total: u64, retired: u64) -> SimStats {
    let scale = |v: u64| ((v as u128 * total as u128) / retired as u128) as u64;
    let scale_cache = |c: &CacheStats| CacheStats {
        read_hits: scale(c.read_hits),
        read_misses: scale(c.read_misses),
        read_replacements: scale(c.read_replacements),
        write_hits: scale(c.write_hits),
        write_misses: scale(c.write_misses),
        write_replacements: scale(c.write_replacements),
    };
    let m = &prefix.inst_mix;
    SimStats {
        inst_mix: InstMix {
            int_alu: scale(m.int_alu),
            fp_alu: scale(m.fp_alu),
            vec_alu: scale(m.vec_alu),
            loads: scale(m.loads),
            stores: scale(m.stores),
            branches: scale(m.branches),
            branches_taken: scale(m.branches_taken),
            other: scale(m.other),
        },
        cache: HierarchyStats {
            l1d: scale_cache(&prefix.cache.l1d),
            l1i: scale_cache(&prefix.cache.l1i),
            l2: scale_cache(&prefix.cache.l2),
            l3: prefix.cache.l3.as_ref().map(scale_cache),
            dram_reads: scale(prefix.cache.dram_reads),
            dram_writes: scale(prefix.cache.dram_writes),
        },
        host_nanos: prefix.host_nanos,
    }
}

/// Adapter exposing a bare run function (the deprecated
/// [`crate::SimulatorRunFn`] era) as a [`SimBackend`], so legacy
/// overrides keep working behind the typed API.
pub struct FnBackend {
    name: String,
    func: Arc<SimulatorRunFn>,
}

impl FnBackend {
    /// Wraps `func` under `name`.
    pub fn new(name: impl Into<String>, func: Arc<SimulatorRunFn>) -> Self {
        FnBackend {
            name: name.into(),
            func,
        }
    }
}

impl fmt::Debug for FnBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnBackend")
            .field("name", &self.name)
            .finish()
    }
}

impl SimBackend for FnBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn fidelity(&self) -> Fidelity {
        Fidelity::Custom
    }

    fn run_one(&self, exe: &Executable, _limits: &RunLimits) -> Result<SimReport, BackendError> {
        let stats = (self.func)(exe)?;
        Ok(SimReport::full(stats, &self.name, Fidelity::Custom))
    }
}

/// A typed registry of named simulator backends — the successor of the
/// stringly [`crate::FunctionRegistry`]. Iteration order (and thus
/// [`BackendRegistry::names`]) is the names' lexicographic order.
#[derive(Default, Clone)]
pub struct BackendRegistry {
    backends: BTreeMap<String, Arc<dyn SimBackend>>,
}

impl fmt::Debug for BackendRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BackendRegistry")
            .field("registered", &self.names())
            .finish()
    }
}

impl BackendRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registry pre-populated with the three bundled fidelity tiers for
    /// `hierarchy`: [`AccurateBackend`], [`FastCountBackend`] and a
    /// [`SampledBackend`] at `sample_fraction`.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Config`] (as [`CoreError`]) for an
    /// invalid `sample_fraction`.
    pub fn with_defaults(
        hierarchy: &HierarchyConfig,
        sample_fraction: f64,
    ) -> Result<Self, CoreError> {
        let mut reg = BackendRegistry::new();
        reg.register(Arc::new(AccurateBackend::new(hierarchy.clone())), false)?;
        reg.register(Arc::new(FastCountBackend::matching(hierarchy)), false)?;
        reg.register(
            Arc::new(SampledBackend::new(hierarchy.clone(), sample_fraction)?),
            false,
        )?;
        Ok(reg)
    }

    /// Registers `backend` under its own [`SimBackend::name`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Registry`] when the name is taken and
    /// overriding was not requested.
    pub fn register(
        &mut self,
        backend: Arc<dyn SimBackend>,
        override_existing: bool,
    ) -> Result<(), CoreError> {
        let name = backend.name().to_string();
        self.register_as(&name, backend, override_existing)
    }

    /// Registers `backend` under an explicit `name` (aliases, A/B
    /// experiments).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Registry`] when the name is taken and
    /// overriding was not requested.
    pub fn register_as(
        &mut self,
        name: &str,
        backend: Arc<dyn SimBackend>,
        override_existing: bool,
    ) -> Result<(), CoreError> {
        if self.backends.contains_key(name) && !override_existing {
            return Err(CoreError::Registry { name: name.into() });
        }
        self.backends.insert(name.to_string(), backend);
        Ok(())
    }

    /// Resolves a backend by name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn SimBackend>> {
        self.backends.get(name).cloned()
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.backends.keys().map(String::as_str).collect()
    }

    /// Number of registered backends.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }
}

/// One configured simulation context: a backend plus parallelism, run
/// limits and an optional memo cache — what [`crate::SimulatorRunner`]
/// is built on and what the autotuning loops drive.
///
/// Created through [`SimSession::builder`]. Building a session spawns a
/// *persistent* pool of `n_parallel` worker threads
/// (`crates/core/src/pool.rs`) that lives until the last session clone
/// (and last outstanding [`BatchTicket`]) is dropped; batches are
/// enqueued on the pool's chunked deque, so a tuning sweep pays thread
/// spawn/teardown once per session instead of once per batch. Results
/// are always returned in submission order.
///
/// [`SimSession::run`] is the synchronous entry point;
/// [`SimSession::submit`] hands back a [`BatchTicket`] immediately so
/// callers can lower the next batch while this one simulates — the
/// producer/consumer overlap the pipelined tuning loops are built on.
///
/// Each executable is decoded exactly once ([`Executable::decode`]) on
/// a worker and handed to [`SimBackend::run_one_decoded`]. When a
/// [`SimCache`] is attached and the backend opts into memoization
/// ([`SimBackend::memo_key`]), lookups happen at *submission* time on
/// the submitting thread: previously seen candidates are answered
/// without any backend execution (or decode), and a candidate whose
/// fingerprint is already in flight becomes a follower of that
/// execution instead of a duplicate run.
///
/// # Example
///
/// ```
/// use simtune_cache::HierarchyConfig;
/// use simtune_core::SimSession;
/// use simtune_isa::{Executable, Gpr, Inst, ProgramBuilder, TargetIsa};
///
/// # fn main() -> Result<(), simtune_core::CoreError> {
/// let mut b = ProgramBuilder::new();
/// b.push(Inst::Li { rd: Gpr(1), imm: 7 });
/// b.push(Inst::Halt);
/// let exe = Executable::new("demo", b.build().unwrap(), TargetIsa::riscv_u74());
///
/// let session = SimSession::builder()
///     .fast_count(&HierarchyConfig::tiny_for_tests())
///     .n_parallel(2)
///     .build()?;
/// let report = session.run(&[exe]).remove(0).expect("simulates");
/// assert_eq!(report.backend, "fast-count");
/// assert!(report.stats.inst_mix.total() >= 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct SimSession {
    backend: Arc<dyn SimBackend>,
    n_parallel: usize,
    limits: RunLimits,
    engine: EngineKind,
    memo: Option<Arc<SimCache>>,
    pool: Arc<WorkerPool>,
    inflight: Arc<InflightMap>,
    /// Scheduling lane on the pool (0 for standalone sessions; one
    /// lane per tenant when the pool is shared by a service).
    lane: usize,
    /// Per-tenant counters, when owned by a [`crate::SimService`] tenant.
    tenant: Option<Arc<crate::pool::TenantCounters>>,
}

impl fmt::Debug for SimSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimSession")
            .field("backend", &self.backend.name())
            .field("fidelity", &self.backend.fidelity())
            .field("n_parallel", &self.n_parallel)
            .field("memo", &self.memo)
            .finish()
    }
}

impl SimSession {
    /// Starts building a session.
    pub fn builder() -> SimSessionBuilder {
        SimSessionBuilder::default()
    }

    /// The backend this session drives.
    pub fn backend(&self) -> &Arc<dyn SimBackend> {
        &self.backend
    }

    /// Name of the backend this session drives.
    pub fn backend_name(&self) -> &str {
        self.backend.name()
    }

    /// Worker threads used per batch.
    pub fn n_parallel(&self) -> usize {
        self.n_parallel
    }

    /// Per-run instruction budget.
    pub fn limits(&self) -> RunLimits {
        self.limits
    }

    /// Replay engine every trial runs on (see
    /// [`SimSessionBuilder::engine`]).
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// The attached memo cache, if any.
    pub fn memo_cache(&self) -> Option<&Arc<SimCache>> {
        self.memo.as_ref()
    }

    /// Lifetime counters of this session's persistent worker pool:
    /// batches enqueued, trials executed, busy vs. wall time.
    pub fn pool_stats(&self) -> WorkerPoolStats {
        self.pool.stats()
    }

    /// Submits a batch to the persistent pool and returns immediately.
    ///
    /// Memo lookups (and in-flight deduplication) happen here, on the
    /// calling thread, so cached candidates resolve without touching
    /// the pool at all; everything else is executed by the session's
    /// workers while the caller is free to prepare the next batch.
    /// [`BatchTicket::wait`] returns results in submission order.
    pub fn submit(&self, exes: Vec<Executable>) -> BatchTicket {
        let ctx = BatchCtx {
            backend: self.backend.clone(),
            limits: self.limits,
            engine: self.engine,
            memo: self.memo.clone(),
            inflight: self.inflight.clone(),
            lane: self.lane,
            tenant: self.tenant.clone(),
        };
        let batch = Batch::plan(ctx, exes);
        if batch.n_tasks() > 0 {
            self.pool.enqueue(batch.clone());
        }
        BatchTicket::new(batch, self.pool.clone())
    }

    /// Runs every executable on the session's persistent worker pool,
    /// preserving order — [`SimSession::submit`] + [`BatchTicket::wait`]
    /// in one call.
    pub fn run(&self, exes: &[Executable]) -> Vec<Result<SimReport, CoreError>> {
        self.submit(exes.to_vec()).wait()
    }

    /// Like [`SimSession::run`] but strips reports down to bare
    /// [`SimStats`] — the shape the feature extractor and predictors eat.
    pub fn run_stats(&self, exes: &[Executable]) -> Vec<Result<SimStats, CoreError>> {
        self.run(exes)
            .into_iter()
            .map(|r| r.map(|rep| rep.stats))
            .collect()
    }
}

/// Builder for [`SimSession`].
#[derive(Default)]
pub struct SimSessionBuilder {
    backend: Option<Arc<dyn SimBackend>>,
    n_parallel: Option<usize>,
    limits: Option<RunLimits>,
    engine: Option<EngineKind>,
    memo: Option<Arc<SimCache>>,
    shared: Option<SharedPool>,
    error: Option<CoreError>,
}

/// A pre-existing pool a service session plugs into instead of spawning
/// its own workers.
struct SharedPool {
    pool: Arc<WorkerPool>,
    lane: usize,
    tenant: Option<Arc<crate::pool::TenantCounters>>,
}

impl fmt::Debug for SimSessionBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimSessionBuilder")
            .field("backend", &self.backend.as_ref().map(|b| b.name()))
            .field("n_parallel", &self.n_parallel)
            .finish()
    }
}

impl SimSessionBuilder {
    /// Uses an explicit backend instance. Clears any deferred error from
    /// an earlier failed selection step, so fallback chains like
    /// `from_registry(...).backend(...)` recover.
    pub fn backend(mut self, backend: Arc<dyn SimBackend>) -> Self {
        self.backend = Some(backend);
        self.error = None;
        self
    }

    /// Uses the backend named by a [`crate::FidelitySpec`] — the
    /// canonical way to pick a tier. Every bundled tier is reachable:
    /// `"accurate"`, `"fast-count"`, `"sampled:fraction=0.5"`,
    /// `"pipelined:btb=512,ras=8"`. A spec the tier rejects (e.g. an
    /// out-of-range fraction) surfaces from
    /// [`SimSessionBuilder::build`].
    pub fn fidelity(mut self, spec: &crate::FidelitySpec, hierarchy: &HierarchyConfig) -> Self {
        match spec.build(hierarchy) {
            Ok(b) => self.backend(b),
            Err(e) => {
                self.error = Some(e);
                self
            }
        }
    }

    /// Uses the instruction-accurate reference backend for `hierarchy`.
    ///
    /// Prefer [`SimSessionBuilder::fidelity`] with
    /// [`crate::FidelitySpec::Accurate`]; this shim remains for
    /// source compatibility.
    pub fn accurate(self, hierarchy: &HierarchyConfig) -> Self {
        self.backend(Arc::new(AccurateBackend::new(hierarchy.clone())))
    }

    /// Uses the counting-only backend matched to `hierarchy`'s line size.
    ///
    /// Prefer [`SimSessionBuilder::fidelity`] with
    /// [`crate::FidelitySpec::FastCount`]; this shim remains for
    /// source compatibility.
    pub fn fast_count(self, hierarchy: &HierarchyConfig) -> Self {
        self.backend(Arc::new(FastCountBackend::matching(hierarchy)))
    }

    /// Uses the sampling backend at `fraction`; an invalid fraction
    /// surfaces from [`SimSessionBuilder::build`].
    ///
    /// Prefer [`SimSessionBuilder::fidelity`] with
    /// [`crate::FidelitySpec::Sampled`]; this shim remains for source
    /// compatibility.
    pub fn sampled(mut self, hierarchy: &HierarchyConfig, fraction: f64) -> Self {
        match SampledBackend::new(hierarchy.clone(), fraction) {
            Ok(b) => self.backend(Arc::new(b)),
            Err(e) => {
                self.error = Some(e.into());
                self
            }
        }
    }

    /// Resolves `name` in `registry`; a miss surfaces from
    /// [`SimSessionBuilder::build`].
    pub fn from_registry(mut self, registry: &BackendRegistry, name: &str) -> Self {
        match registry.get(name) {
            Some(b) => self.backend(b),
            None => {
                self.error = Some(CoreError::Registry { name: name.into() });
                self
            }
        }
    }

    /// Sets the number of parallel simulator instances — the worker
    /// threads the session's persistent pool spawns (clamped to at
    /// least 1).
    ///
    /// When unset, the default is the host's
    /// [`std::thread::available_parallelism`] clamped to at most 16
    /// (the paper's Listing 3 default). The historical behavior —
    /// always 16, even on a 4-core host — oversubscribed small
    /// machines; pass an explicit value to override the clamp in either
    /// direction (e.g. `n_parallel(32)` on a large host, or
    /// `n_parallel(1)` for serial debugging).
    pub fn n_parallel(mut self, n: usize) -> Self {
        self.n_parallel = Some(n.max(1));
        self
    }

    /// Sets the per-run instruction budget.
    pub fn limits(mut self, limits: RunLimits) -> Self {
        self.limits = Some(limits);
        self
    }

    /// Selects the replay engine for every trial (default
    /// [`EngineKind::Decoded`]). Bundled engines are bit-identical, so
    /// this is purely a host-speed knob: [`EngineKind::Threaded`] lowers
    /// each decoded program once more into threaded code,
    /// [`EngineKind::Batch`] additionally lets the session group
    /// same-program trials of one submission into a lane-parallel SoA
    /// replay when the backend supports it
    /// ([`SimBackend::supports_soa_batch`]). Backends that do not
    /// understand the bundled ladder ignore the selection.
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Attaches a [`SimCache`] so revisited candidates are answered from
    /// memory instead of re-simulated. Share one `Arc<SimCache>` across
    /// sessions to deduplicate simulations across tuning loops; only
    /// backends that opt in via [`SimBackend::memo_key`] are memoized.
    pub fn memo_cache(mut self, cache: Arc<SimCache>) -> Self {
        self.memo = Some(cache);
        self
    }

    /// Conditionally attaches a [`SimCache`] ([`None`] leaves
    /// memoization off) — convenience for plumbing optional caches from
    /// tuning options.
    pub fn memo_cache_opt(mut self, cache: Option<Arc<SimCache>>) -> Self {
        self.memo = cache;
        self
    }

    /// Plugs the session into an existing worker pool on the given
    /// scheduling lane instead of spawning its own workers — how
    /// [`crate::SimService`] multiplexes N tenants onto one pool. The
    /// session's `n_parallel` becomes the pool's worker count.
    pub(crate) fn shared_pool(
        mut self,
        pool: Arc<WorkerPool>,
        lane: usize,
        tenant: Option<Arc<crate::pool::TenantCounters>>,
    ) -> Self {
        self.shared = Some(SharedPool { pool, lane, tenant });
        self
    }

    /// Finishes the session.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Pipeline`] when no backend was chosen, or the
    /// deferred error of an invalid [`SimSessionBuilder::sampled`] /
    /// [`SimSessionBuilder::from_registry`] step.
    pub fn build(self) -> Result<SimSession, CoreError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let backend = self
            .backend
            .ok_or_else(|| CoreError::Pipeline("SimSession needs a backend".into()))?;
        let (pool, lane, tenant) = match self.shared {
            Some(shared) => (shared.pool, shared.lane, shared.tenant),
            None => {
                let n = self.n_parallel.unwrap_or_else(default_n_parallel);
                (WorkerPool::new(n), 0, None)
            }
        };
        Ok(SimSession {
            backend,
            n_parallel: pool.workers(),
            limits: self.limits.unwrap_or_default(),
            engine: self.engine.unwrap_or_default(),
            memo: self.memo,
            pool,
            inflight: Arc::new(InflightMap::default()),
            lane,
            tenant,
        })
    }
}

/// Default worker count: every available core, capped at the paper's
/// `n_parallel = 16` — 16 simulators on a 4-core laptop only thrash.
fn default_n_parallel() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelBuilder;
    use simtune_tensor::{matmul, Schedule, TargetIsa};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn exes(n: usize) -> Vec<Executable> {
        let def = matmul(6, 6, 6);
        let b = KernelBuilder::new(def.clone(), TargetIsa::riscv_u74());
        let s = Schedule::default_for(&def);
        (0..n)
            .map(|i| b.build(&s, &format!("m{i}")).unwrap())
            .collect()
    }

    fn hier() -> HierarchyConfig {
        HierarchyConfig::riscv_u74()
    }

    #[test]
    fn accurate_and_fast_count_agree_on_retired_instructions() {
        let exes = exes(1);
        let acc = AccurateBackend::new(hier());
        let fast = FastCountBackend::matching(&hier());
        let a = acc.run_one(&exes[0], &RunLimits::default()).unwrap();
        let f = fast.run_one(&exes[0], &RunLimits::default()).unwrap();
        assert_eq!(a.stats.inst_mix, f.stats.inst_mix);
        assert_eq!(a.backend, "accurate");
        assert_eq!(f.backend, "fast-count");
        assert!(!a.extrapolated && !f.extrapolated);
        // The fast path reports no cache-model activity.
        assert_eq!(f.stats.cache.l1d.read_hits, 0);
        assert_eq!(f.stats.cache.l2, CacheStats::default());
    }

    #[test]
    fn sampled_at_full_fraction_equals_accurate() {
        let exes = exes(1);
        let acc = AccurateBackend::new(hier());
        let samp = SampledBackend::new(hier(), 1.0).unwrap();
        let a = acc.run_one(&exes[0], &RunLimits::default()).unwrap();
        let s = samp.run_one(&exes[0], &RunLimits::default()).unwrap();
        assert!(!s.extrapolated);
        assert_eq!(a.stats.inst_mix, s.stats.inst_mix);
        assert_eq!(a.stats.cache, s.stats.cache);
    }

    #[test]
    fn sampled_extrapolates_partial_runs() {
        let exes = exes(1);
        let acc = AccurateBackend::new(hier());
        let full = acc.run_one(&exes[0], &RunLimits::default()).unwrap();
        let total = full.stats.inst_mix.total();
        let samp = SampledBackend::new(hier(), 0.25).unwrap().with_min_insts(1);
        let s = samp.run_one(&exes[0], &RunLimits::default()).unwrap();
        assert!(s.extrapolated);
        assert_eq!(s.fidelity, Fidelity::Sampled { fraction: 0.25 });
        // Extrapolated totals land close to the true total (linear
        // scaling of an exact quarter prefix: within rounding of the
        // component-wise division).
        let est = s.stats.inst_mix.total();
        let err = est.abs_diff(total) as f64 / total as f64;
        assert!(err < 0.05, "estimate {est} vs true {total}");
    }

    #[test]
    fn sampled_rejects_bad_fractions() {
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            let err = SampledBackend::new(hier(), bad).unwrap_err();
            assert!(matches!(err, BackendError::Config { .. }), "{bad}");
        }
    }

    #[test]
    fn registry_rejects_collisions_with_registry_error() {
        let mut reg = BackendRegistry::with_defaults(&hier(), 0.5).unwrap();
        assert_eq!(reg.names(), ["accurate", "fast-count", "sampled"]);
        let err = reg
            .register(Arc::new(AccurateBackend::new(hier())), false)
            .unwrap_err();
        assert!(matches!(err, CoreError::Registry { ref name } if name == "accurate"));
        // Overriding is allowed when asked for.
        reg.register(Arc::new(AccurateBackend::new(hier())), true)
            .unwrap();
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn session_runs_parallel_and_preserves_order() {
        let exes = exes(6);
        let seq = SimSession::builder()
            .accurate(&hier())
            .n_parallel(1)
            .build()
            .unwrap();
        let par = SimSession::builder()
            .accurate(&hier())
            .n_parallel(4)
            .build()
            .unwrap();
        let a = seq.run(&exes);
        let b = par.run(&exes);
        for (x, y) in a.iter().zip(&b) {
            let (x, y) = (x.as_ref().unwrap(), y.as_ref().unwrap());
            assert_eq!(x.stats.inst_mix, y.stats.inst_mix);
            assert_eq!(x.stats.cache, y.stats.cache);
            assert_eq!(x.backend, y.backend);
        }
    }

    #[test]
    fn session_builder_surfaces_deferred_errors() {
        let err = SimSession::builder().build().unwrap_err();
        assert!(matches!(err, CoreError::Pipeline(_)));
        let err = SimSession::builder()
            .sampled(&hier(), 2.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::Backend { .. }));
        let reg = BackendRegistry::new();
        let err = SimSession::builder()
            .from_registry(&reg, "missing")
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::Registry { ref name } if name == "missing"));
        // A later explicit selection recovers from the failed lookup.
        let session = SimSession::builder()
            .from_registry(&reg, "missing")
            .accurate(&hier())
            .build()
            .unwrap();
        assert_eq!(session.backend_name(), "accurate");
    }

    /// Wraps a backend and counts actual executions — the probe for
    /// asserting that memo hits skip the backend entirely.
    struct CountingBackend<B> {
        inner: B,
        executions: AtomicUsize,
    }

    impl<B: SimBackend> CountingBackend<B> {
        fn new(inner: B) -> Self {
            CountingBackend {
                inner,
                executions: AtomicUsize::new(0),
            }
        }
    }

    impl<B: SimBackend> SimBackend for CountingBackend<B> {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn fidelity(&self) -> Fidelity {
            self.inner.fidelity()
        }
        fn run_one(&self, exe: &Executable, limits: &RunLimits) -> Result<SimReport, BackendError> {
            self.executions.fetch_add(1, Ordering::Relaxed);
            self.inner.run_one(exe, limits)
        }
        fn run_one_decoded(
            &self,
            exe: &Executable,
            decoded: &DecodedProgram,
            limits: &RunLimits,
        ) -> Result<SimReport, BackendError> {
            self.executions.fetch_add(1, Ordering::Relaxed);
            self.inner.run_one_decoded(exe, decoded, limits)
        }
        fn memo_key(&self) -> Option<String> {
            self.inner.memo_key()
        }
    }

    #[test]
    fn memo_cache_skips_repeat_executions_and_replays_reports() {
        let exes = exes(3);
        let backend = Arc::new(CountingBackend::new(AccurateBackend::new(hier())));
        let cache = Arc::new(SimCache::new());
        let session = SimSession::builder()
            .backend(backend.clone())
            .n_parallel(1)
            .memo_cache(cache.clone())
            .build()
            .unwrap();

        // All three candidates are one schedule under three trial names;
        // the name is excluded from the fingerprint, so the backend runs
        // once and the other two are memo hits.
        let first: Vec<SimReport> = session.run(&exes).into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(backend.executions.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(cache.len(), 1);
        let second: Vec<SimReport> = session.run(&exes).into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(
            backend.executions.load(Ordering::Relaxed),
            1,
            "repeat batch must be answered entirely from the cache"
        );
        assert_eq!(first, second, "memo hits replay byte-identical reports");
        assert!(cache.stats().hit_ratio() > 0.5);
    }

    #[test]
    fn memo_cache_distinguishes_backend_configurations() {
        let exes = exes(1);
        let cache = Arc::new(SimCache::new());
        let tiny = SimSession::builder()
            .accurate(&HierarchyConfig::tiny_for_tests())
            .n_parallel(1)
            .memo_cache(cache.clone())
            .build()
            .unwrap();
        let big = SimSession::builder()
            .accurate(&hier())
            .n_parallel(1)
            .memo_cache(cache.clone())
            .build()
            .unwrap();
        let a = tiny.run(&exes).pop().unwrap().unwrap();
        let b = big.run(&exes).pop().unwrap().unwrap();
        // A 6x6x6 matmul happens to fit both geometries, so the reports
        // agree — but the fingerprints must not: reusing one geometry's
        // result for the other would be wrong on any larger kernel.
        assert_eq!(cache.stats().hits, 0, "different geometries must miss");
        assert_eq!(cache.len(), 2);
        assert_eq!(a.backend, b.backend);
    }

    #[test]
    fn custom_backends_run_programs_the_static_validator_rejects() {
        use simtune_isa::{Gpr, Inst, ProgramBuilder, TargetIsa};

        // Dead instruction after the terminator: the interpreter never
        // reaches it, but decode-time validation rejects the program.
        let mut b = ProgramBuilder::new();
        b.push(Inst::Halt);
        b.push(Inst::Li { rd: Gpr(1), imm: 1 });
        let exe = Executable::new("tail", b.build().unwrap(), TargetIsa::riscv_u74());
        assert!(exe.decode().is_err(), "sanity: validator rejects it");

        // A custom backend driving its own simulator must still run it.
        let custom = FnBackend::new(
            "external",
            Arc::new(|_: &Executable| {
                Ok(SimStats {
                    host_nanos: 5,
                    ..SimStats::default()
                })
            }),
        );
        let session = SimSession::builder()
            .backend(Arc::new(custom))
            .n_parallel(1)
            .build()
            .unwrap();
        let report = session
            .run(std::slice::from_ref(&exe))
            .pop()
            .unwrap()
            .expect("custom backend is not subject to decode validation");
        assert_eq!(report.stats.host_nanos, 5);

        // The bundled backends report the decode error instead.
        let accurate = SimSession::builder()
            .accurate(&hier())
            .n_parallel(1)
            .build()
            .unwrap();
        let err = accurate
            .run(std::slice::from_ref(&exe))
            .pop()
            .unwrap()
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::Sim(simtune_isa::SimError::InvalidPc { .. })
        ));
    }

    #[test]
    fn memo_hits_do_not_decode() {
        use simtune_isa::{Gpr, Inst, ProgramBuilder, TargetIsa};

        // An undecodable program with a memoized report: served from the
        // cache without tripping the validator, proving the lookup
        // happens before (and without) the decode.
        let mut b = ProgramBuilder::new();
        b.push(Inst::Halt);
        b.push(Inst::Li { rd: Gpr(1), imm: 1 });
        let exe = Executable::new("tail", b.build().unwrap(), TargetIsa::riscv_u74());

        let cache = Arc::new(SimCache::new());
        let session = SimSession::builder()
            .accurate(&hier())
            .n_parallel(1)
            .memo_cache(cache.clone())
            .build()
            .unwrap();
        let backend = session.backend().clone();
        let key = crate::memo::fingerprint(
            &exe,
            &backend.fidelity_digest().unwrap(),
            &session.limits(),
            session.engine(),
        );
        let planted = SimReport::full(SimStats::default(), ACCURATE, Fidelity::Accurate);
        cache.insert(key, planted.clone());
        let report = session
            .run(std::slice::from_ref(&exe))
            .pop()
            .unwrap()
            .expect("hit served without decoding");
        assert_eq!(report, planted);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn custom_backends_are_not_memoized() {
        let exes = exes(1);
        let calls = Arc::new(AtomicUsize::new(0));
        let calls_inner = calls.clone();
        let b = FnBackend::new(
            "stub",
            Arc::new(move |_: &Executable| {
                calls_inner.fetch_add(1, Ordering::Relaxed);
                Ok(SimStats::default())
            }),
        );
        let cache = Arc::new(SimCache::new());
        let session = SimSession::builder()
            .backend(Arc::new(b))
            .n_parallel(1)
            .memo_cache(cache.clone())
            .build()
            .unwrap();
        session.run(&exes);
        session.run(&exes);
        assert_eq!(calls.load(Ordering::Relaxed), 2, "no memo for Custom");
        assert!(cache.is_empty());
        assert_eq!(cache.stats().lookups(), 0);
    }

    #[test]
    fn fn_backend_adapts_legacy_overrides() {
        let exes = exes(1);
        let b = FnBackend::new(
            "stub",
            Arc::new(|_: &Executable| {
                Ok(SimStats {
                    host_nanos: 99,
                    ..SimStats::default()
                })
            }),
        );
        let r = b.run_one(&exes[0], &RunLimits::default()).unwrap();
        assert_eq!(r.stats.host_nanos, 99);
        assert_eq!(r.backend, "stub");
        assert_eq!(r.fidelity, Fidelity::Custom);
    }
}
