//! Disk persistence for [`SimCache`]: versioned, fingerprint-keyed
//! snapshots so a warm cache survives restarts.
//!
//! The paper's economics rest on amortizing simulation across runs;
//! CAPSim amortizes through a learned predictor and Pac-Sim through
//! reused sampled regions (PAPERS.md). [`SimCache::save_to`] /
//! [`SimCache::load_from`] give the memo cache the same property: a
//! tuning service can write its cache on shutdown and start warm, and a
//! snapshot can ship between machines — the fingerprint covers target,
//! backend, configuration and limits, so a stale or foreign entry can
//! only ever miss, never corrupt a result.
//!
//! # Format and versioning
//!
//! A snapshot is one JSON object (`{"schema": "simtune-simcache-v3",
//! "entries": [...]}`). Each entry stores the canonical fingerprint
//! (hex-encoded — fingerprints embed raw little-endian `f32` data bytes
//! and are not UTF-8) plus the memoized [`SimReport`] flattened into the
//! same counter-array shape `simtune-bench` uses for persisted datasets.
//! Entries are sorted by fingerprint, so equal caches serialize to
//! byte-identical files.
//!
//! The `schema` string is the only compatibility contract: readers
//! accept exactly their own version and reject everything else. There
//! are no migrations — a cache is a cache, and the cost of a rejected
//! snapshot is one cold start.
//!
//! # Crash-safety contract
//!
//! * **Writes are atomic**: [`SimCache::save_to`] (and
//!   [`atomic_write`]) serialize to a temporary file in the destination
//!   directory and `rename` it into place, so a reader observes either
//!   the old snapshot or the new one — never a truncated hybrid, even
//!   if the writer is killed mid-write or the disk fills.
//! * **Loads never fail the service**: a missing file is a cold start;
//!   a corrupt, truncated or version-mismatched file is *also* a cold
//!   start — logged, counted in
//!   [`SnapshotStats`](crate::metrics::SnapshotStats), and reported as
//!   [`SnapshotLoad::Rejected`] — because refusing to boot over a bad
//!   cache file would invert the cache's value. Only genuine I/O errors
//!   (permissions, hardware) surface as `Err`.
//! * **Replays are bit-identical**: a loaded entry is byte-for-byte the
//!   stored report (`host_nanos` included), so a warm run scores
//!   exactly what the cold run that wrote the snapshot scored —
//!   enforced by the round-trip differential test in
//!   `crates/core/tests/snapshot_roundtrip.rs`.

use crate::backend::{Fidelity, SimReport};
use crate::memo::SimCache;
use serde::{Deserialize, Serialize};
use simtune_cache::{CacheStats, HierarchyStats};
use simtune_hw::CycleBreakdown;
use simtune_isa::{InstMix, SimStats};
use std::fs;
use std::io;
use std::path::Path;
use std::sync::atomic::Ordering;

/// Version tag accepted by this reader; anything else is rejected (and
/// degrades to a cold start). v2: fingerprints gained the replay-engine
/// identity, so v1 snapshots (keyed without an `engine=` line) are
/// refused rather than replayed under ambiguous keys. v3: fingerprints
/// are re-keyed on [fidelity digests](crate::SimBackend::fidelity_digest)
/// instead of the old `(backend, fidelity, memo key)` triple, and
/// reports gained an optional [`CycleBreakdown`] — v2 snapshots are
/// refused (logged cold start) rather than replayed under stale keys.
pub const SNAPSHOT_SCHEMA: &str = "simtune-simcache-v3";

/// Outcome of [`SimCache::load_from`]. Every variant leaves the cache
/// usable; only I/O errors surface as `Err`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotLoad {
    /// No snapshot exists at the path — plain cold start.
    Missing,
    /// Snapshot restored; carries the number of entries inserted.
    Loaded(usize),
    /// Snapshot refused (corrupt, truncated or version-mismatched);
    /// carries the reason. The cache starts cold.
    Rejected(String),
}

/// Writes `bytes` to `path` atomically: serialize to a sibling
/// temporary file, then `rename` into place. A crash mid-write leaves
/// either the previous file or no file — never a truncated one. Parent
/// directories are created as needed.
///
/// # Errors
///
/// Propagates filesystem errors from the write or the rename.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = match path.parent() {
        Some(dir) if !dir.as_os_str().is_empty() => {
            fs::create_dir_all(dir)?;
            dir.to_path_buf()
        }
        _ => std::path::PathBuf::from("."),
    };
    // Unique per process: concurrent writers race on the rename (last
    // one wins, which is fine — both files are complete), never on the
    // temporary file itself.
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = dir.join(format!(
        ".{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path).inspect_err(|_| {
        let _ = fs::remove_file(&tmp);
    })
}

#[derive(Debug, Serialize, Deserialize)]
struct PersistedCacheStats {
    counters: [u64; 6],
}

impl From<CacheStats> for PersistedCacheStats {
    fn from(s: CacheStats) -> Self {
        PersistedCacheStats {
            counters: [
                s.read_hits,
                s.read_misses,
                s.read_replacements,
                s.write_hits,
                s.write_misses,
                s.write_replacements,
            ],
        }
    }
}

impl From<PersistedCacheStats> for CacheStats {
    fn from(p: PersistedCacheStats) -> Self {
        let [rh, rm, rr, wh, wm, wr] = p.counters;
        CacheStats {
            read_hits: rh,
            read_misses: rm,
            read_replacements: rr,
            write_hits: wh,
            write_misses: wm,
            write_replacements: wr,
        }
    }
}

#[derive(Debug, Serialize, Deserialize)]
struct PersistedStats {
    mix: [u64; 8],
    l1d: PersistedCacheStats,
    l1i: PersistedCacheStats,
    l2: PersistedCacheStats,
    l3: Option<PersistedCacheStats>,
    dram: [u64; 2],
    host_nanos: u64,
}

impl From<&SimStats> for PersistedStats {
    fn from(s: &SimStats) -> Self {
        let m = s.inst_mix;
        PersistedStats {
            mix: [
                m.int_alu,
                m.fp_alu,
                m.vec_alu,
                m.loads,
                m.stores,
                m.branches,
                m.branches_taken,
                m.other,
            ],
            l1d: s.cache.l1d.into(),
            l1i: s.cache.l1i.into(),
            l2: s.cache.l2.into(),
            l3: s.cache.l3.map(Into::into),
            dram: [s.cache.dram_reads, s.cache.dram_writes],
            host_nanos: s.host_nanos,
        }
    }
}

impl From<PersistedStats> for SimStats {
    fn from(p: PersistedStats) -> Self {
        let [int_alu, fp_alu, vec_alu, loads, stores, branches, branches_taken, other] = p.mix;
        SimStats {
            inst_mix: InstMix {
                int_alu,
                fp_alu,
                vec_alu,
                loads,
                stores,
                branches,
                branches_taken,
                other,
            },
            cache: HierarchyStats {
                l1d: p.l1d.into(),
                l1i: p.l1i.into(),
                l2: p.l2.into(),
                l3: p.l3.map(Into::into),
                dram_reads: p.dram[0],
                dram_writes: p.dram[1],
            },
            host_nanos: p.host_nanos,
        }
    }
}

#[derive(Debug, Serialize, Deserialize)]
struct PersistedEntry {
    /// Hex-encoded canonical fingerprint (raw bytes, not UTF-8).
    key: String,
    backend: String,
    /// `"accurate" | "count-only" | "sampled" | "pipelined" | "custom"`.
    fidelity: String,
    /// Sampling fraction; present exactly when `fidelity == "sampled"`.
    fraction: Option<f64>,
    extrapolated: bool,
    stats: PersistedStats,
    /// Bit patterns (`f64::to_bits`) of the cycle breakdown's
    /// `[pipeline, memory, control]` components, so the replay is
    /// bit-identical; `null` for tiers without a timing model.
    cycles: Option<[u64; 3]>,
}

#[derive(Debug, Serialize, Deserialize)]
struct PersistedSnapshot {
    schema: String,
    entries: Vec<PersistedEntry>,
}

fn encode_fidelity(f: &Fidelity) -> (String, Option<f64>) {
    match f {
        Fidelity::Accurate => ("accurate".into(), None),
        Fidelity::CountOnly => ("count-only".into(), None),
        Fidelity::Sampled { fraction } => ("sampled".into(), Some(*fraction)),
        Fidelity::Pipelined => ("pipelined".into(), None),
        // `Fidelity` is non-exhaustive; future variants fall back to
        // `Custom`, which never collides with memoized tiers because
        // custom backends opt out of memoization by default.
        _ => ("custom".into(), None),
    }
}

fn decode_fidelity(kind: &str, fraction: Option<f64>) -> Result<Fidelity, String> {
    match (kind, fraction) {
        ("accurate", None) => Ok(Fidelity::Accurate),
        ("count-only", None) => Ok(Fidelity::CountOnly),
        ("sampled", Some(fraction)) => Ok(Fidelity::Sampled { fraction }),
        ("pipelined", None) => Ok(Fidelity::Pipelined),
        ("custom", None) => Ok(Fidelity::Custom),
        _ => Err(format!("unknown fidelity {kind:?} (fraction {fraction:?})")),
    }
}

fn encode_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn decode_hex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex key".into());
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&s[i..i + 2], 16).map_err(|_| format!("bad hex key byte at {i}"))
        })
        .collect()
}

/// Parses and validates a snapshot document; any defect is a rejection
/// reason, never a panic.
fn decode_snapshot(json: &str) -> Result<Vec<(Vec<u8>, SimReport)>, String> {
    let snap: PersistedSnapshot =
        serde_json::from_str(json).map_err(|e| format!("malformed snapshot: {e}"))?;
    if snap.schema != SNAPSHOT_SCHEMA {
        return Err(format!(
            "schema {:?} does not match {SNAPSHOT_SCHEMA:?}",
            snap.schema
        ));
    }
    snap.entries
        .into_iter()
        .map(|e| {
            let key = decode_hex(&e.key)?;
            let fidelity = decode_fidelity(&e.fidelity, e.fraction)?;
            let report = SimReport {
                stats: e.stats.into(),
                backend: e.backend,
                fidelity,
                extrapolated: e.extrapolated,
                cycles: e.cycles.map(|[p, m, c]| CycleBreakdown {
                    pipeline: f64::from_bits(p),
                    memory: f64::from_bits(m),
                    control: f64::from_bits(c),
                }),
            };
            Ok((key, report))
        })
        .collect()
}

impl SimCache {
    /// Writes every resident entry to `path` as a versioned snapshot,
    /// atomically (temp file + rename in the destination directory).
    /// Returns the number of entries written. Entries are sorted by
    /// fingerprint, so equal caches produce byte-identical files.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; serialization itself cannot fail.
    pub fn save_to(&self, path: &Path) -> io::Result<usize> {
        let mut entries = self.export_entries();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let persisted = PersistedSnapshot {
            schema: SNAPSHOT_SCHEMA.to_string(),
            entries: entries
                .iter()
                .map(|(key, report)| {
                    let (fidelity, fraction) = encode_fidelity(&report.fidelity);
                    PersistedEntry {
                        key: encode_hex(key),
                        backend: report.backend.clone(),
                        fidelity,
                        fraction,
                        extrapolated: report.extrapolated,
                        stats: (&report.stats).into(),
                        cycles: report.cycles.as_ref().map(|c| {
                            [
                                c.pipeline.to_bits(),
                                c.memory.to_bits(),
                                c.control.to_bits(),
                            ]
                        }),
                    }
                })
                .collect(),
        };
        let n = persisted.entries.len();
        let json = serde_json::to_string(&persisted)?;
        atomic_write(path, json.as_bytes())?;
        self.snap_saved.fetch_add(1, Ordering::Relaxed);
        Ok(n)
    }

    /// Restores entries from a snapshot written by [`SimCache::save_to`],
    /// inserting them into this cache (a bounded cache applies its usual
    /// epoch-eviction contract).
    ///
    /// Degrades instead of failing: a missing file returns
    /// [`SnapshotLoad::Missing`]; a corrupt, truncated or
    /// version-mismatched snapshot logs a warning, bumps the rejection
    /// counter in [`SimCache::snapshot_stats`] and returns
    /// [`SnapshotLoad::Rejected`] — the service starts cold either way.
    ///
    /// # Errors
    ///
    /// Only genuine I/O errors (permissions, hardware) surface as `Err`;
    /// [`std::io::ErrorKind::NotFound`] is matched on the read itself
    /// (no TOCTOU `exists()` probe) and mapped to `Missing`.
    pub fn load_from(&self, path: &Path) -> io::Result<SnapshotLoad> {
        let json = match fs::read_to_string(path) {
            Ok(json) => json,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(SnapshotLoad::Missing),
            Err(e) => return Err(e),
        };
        match decode_snapshot(&json) {
            Ok(entries) => {
                let n = entries.len();
                for (key, report) in entries {
                    self.insert(key, report);
                }
                self.snap_loaded.fetch_add(n as u64, Ordering::Relaxed);
                Ok(SnapshotLoad::Loaded(n))
            }
            Err(reason) => {
                self.snap_rejected.fetch_add(1, Ordering::Relaxed);
                crate::log::warn(format!(
                    "ignoring cache snapshot {}: {reason} (cold start)",
                    path.display()
                ));
                Ok(SnapshotLoad::Rejected(reason))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(n: u64, fidelity: Fidelity) -> SimReport {
        SimReport {
            stats: SimStats {
                inst_mix: InstMix {
                    int_alu: n,
                    loads: n + 1,
                    ..Default::default()
                },
                cache: HierarchyStats {
                    l1d: CacheStats {
                        read_hits: n,
                        ..Default::default()
                    },
                    l3: n.is_multiple_of(2).then(CacheStats::default),
                    dram_reads: n,
                    ..Default::default()
                },
                host_nanos: n * 7,
            },
            backend: "accurate".into(),
            fidelity,
            extrapolated: matches!(fidelity, Fidelity::Sampled { .. }),
            // Pipelined entries carry a breakdown with a fractional
            // component, so the round-trip exercises the bit-exact
            // f64 encoding.
            cycles: matches!(fidelity, Fidelity::Pipelined).then(|| CycleBreakdown {
                pipeline: n as f64 + 0.5,
                memory: n as f64 * 3.0,
                control: n as f64,
            }),
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "simtune_snapshot_unit_{}_{name}",
            std::process::id()
        ))
    }

    #[test]
    fn save_load_roundtrips_every_fidelity() {
        let cache = SimCache::new();
        let fids = [
            Fidelity::Accurate,
            Fidelity::CountOnly,
            Fidelity::Sampled { fraction: 0.25 },
            Fidelity::Pipelined,
            Fidelity::Custom,
        ];
        for (i, f) in fids.iter().enumerate() {
            // Non-UTF-8 keys: raw bytes including 0xFF.
            cache.insert(vec![0xFF, i as u8, 0x00, 0x80], report(i as u64, *f));
        }
        let path = tmp("roundtrip.json");
        assert_eq!(cache.save_to(&path).unwrap(), fids.len());
        let fresh = SimCache::new();
        assert_eq!(
            fresh.load_from(&path).unwrap(),
            SnapshotLoad::Loaded(fids.len())
        );
        for (i, f) in fids.iter().enumerate() {
            let got = fresh.peek(&[0xFF, i as u8, 0x00, 0x80]).unwrap();
            assert_eq!(got, report(i as u64, *f));
        }
        assert_eq!(fresh.snapshot_stats().loaded_entries, fids.len() as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_snapshot_is_a_clean_cold_start() {
        let cache = SimCache::new();
        let outcome = cache.load_from(&tmp("never_written.json")).unwrap();
        assert_eq!(outcome, SnapshotLoad::Missing);
        assert_eq!(cache.snapshot_stats().rejected_snapshots, 0);
    }

    #[test]
    fn truncated_snapshot_degrades_to_cold_start() {
        let cache = SimCache::new();
        cache.insert(vec![1, 2, 3], report(1, Fidelity::Accurate));
        let path = tmp("truncated.json");
        cache.save_to(&path).unwrap();
        // Simulate a crash mid-write with a non-atomic writer: chop the
        // file in half.
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let fresh = SimCache::new();
        let outcome = fresh.load_from(&path).unwrap();
        assert!(matches!(outcome, SnapshotLoad::Rejected(_)), "{outcome:?}");
        assert!(fresh.is_empty());
        assert_eq!(fresh.snapshot_stats().rejected_snapshots, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_mismatch_degrades_to_cold_start() {
        let path = tmp("version.json");
        atomic_write(&path, br#"{"schema":"simtune-simcache-v999","entries":[]}"#).unwrap();
        let cache = SimCache::new();
        match cache.load_from(&path).unwrap() {
            SnapshotLoad::Rejected(reason) => assert!(reason.contains("v999"), "{reason}"),
            other => panic!("expected rejection, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_snapshot_is_refused_with_a_captured_warning() {
        // Pre-v3 snapshots were keyed before the fidelity-digest re-key
        // and carry no `cycles` member; replaying them would resurrect
        // entries under stale fingerprints, so the reader refuses them.
        let path = tmp("v2.json");
        atomic_write(&path, br#"{"schema":"simtune-simcache-v2","entries":[]}"#).unwrap();
        let cache = SimCache::new();
        let (outcome, logs) = crate::log::capture(|| cache.load_from(&path).unwrap());
        match outcome {
            SnapshotLoad::Rejected(reason) => assert!(reason.contains("v2"), "{reason}"),
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(logs.len(), 1, "{logs:?}");
        assert!(logs[0].contains("cold start"), "{logs:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_fidelity_rejects_the_snapshot() {
        let path = tmp("fidelity.json");
        let json = format!(
            r#"{{"schema":"{SNAPSHOT_SCHEMA}","entries":[{{"key":"00","backend":"b","fidelity":"quantum","fraction":null,"extrapolated":false,"stats":{{"mix":[0,0,0,0,0,0,0,0],"l1d":{{"counters":[0,0,0,0,0,0]}},"l1i":{{"counters":[0,0,0,0,0,0]}},"l2":{{"counters":[0,0,0,0,0,0]}},"l3":null,"dram":[0,0],"host_nanos":0}},"cycles":null}}]}}"#
        );
        atomic_write(&path, json.as_bytes()).unwrap();
        let cache = SimCache::new();
        assert!(matches!(
            cache.load_from(&path).unwrap(),
            SnapshotLoad::Rejected(_)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn equal_caches_serialize_to_identical_bytes() {
        let a = SimCache::new();
        let b = SimCache::with_shards(4);
        for i in 0..8u8 {
            // Insert in different orders; sorting canonicalizes.
            a.insert(vec![i, 0xAB], report(i as u64, Fidelity::Accurate));
            b.insert(
                vec![7 - i, 0xAB],
                report((7 - i) as u64, Fidelity::Accurate),
            );
        }
        let (pa, pb) = (tmp("detA.json"), tmp("detB.json"));
        a.save_to(&pa).unwrap();
        b.save_to(&pb).unwrap();
        assert_eq!(std::fs::read(&pa).unwrap(), std::fs::read(&pb).unwrap());
        std::fs::remove_file(&pa).ok();
        std::fs::remove_file(&pb).ok();
    }

    #[test]
    fn hex_rejects_garbage() {
        assert!(decode_hex("0").is_err());
        assert!(decode_hex("zz").is_err());
        assert_eq!(decode_hex("00ff").unwrap(), vec![0x00, 0xFF]);
    }
}
