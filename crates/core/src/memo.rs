//! Cross-loop simulation memoization: a canonical-fingerprint →
//! [`SimReport`] cache shared by [`crate::SimSession`]s.
//!
//! Autotuning traffic revisits work constantly: fidelity escalation
//! re-simulates finalists, workflows re-collect groups they already
//! measured, repeated tuning sessions over one kernel re-propose
//! schedules the last session scored. Every such revisit used to pay a
//! full backend execution even though the simulator is deterministic —
//! identical program, input data, target, cache configuration, backend
//! and limits always produce identical statistics. [`SimCache`] turns
//! that determinism into speed: the first execution stores its
//! [`SimReport`] under a canonical fingerprint; every later lookup with
//! the same fingerprint returns the stored report without touching the
//! backend.
//!
//! # Fingerprint
//!
//! The key covers everything result-relevant and nothing else:
//!
//! * the program bytes (disassembly listing — complete and canonical,
//!   including resolved branch targets) and the target ISA,
//! * the prepared data segments (bit-exact `f32` contents),
//! * the fidelity digest ([`crate::SimBackend::fidelity_digest`]) — one
//!   canonical string naming the tier and every configuration knob, in
//!   [`crate::FidelitySpec`] grammar for the bundled backends,
//! * the replay [`EngineKind`] — engines are bit-identical by contract,
//!   but the fingerprint still separates them so an equivalence bug can
//!   never let one engine's report masquerade as another's,
//! * the [`RunLimits`].
//!
//! The executable's *name* is deliberately excluded: tuning loops stamp
//! a fresh name on every trial ("conv2d g3 t17"), and two differently
//! named builds of the same schedule are the same simulation.
//!
//! Backends whose results are not a pure function of the above opt out
//! by returning `None` from [`crate::SimBackend::fidelity_digest`] (the default
//! — only the bundled deterministic tiers opt in), and cache hits are
//! byte-identical replays: even `host_nanos` is the stored value, so
//! downstream scoring sees exactly what a re-run of the original
//! simulation reported.
//!
//! # Sharding
//!
//! The map is split into lock-striped shards (16 by default, selected
//! by a hash of the fingerprint bytes), so the concurrent workers of a
//! [`crate::SimSession`]'s persistent pool no longer serialize their
//! inserts behind one mutex — the "remove synchronization on shared
//! simulator state" lesson of the GPU-simulator parallelization work in
//! PAPERS.md. [`SimCache::with_shards`]`(1)` degenerates to the
//! historical single-lock cache; a property test
//! (`crates/core/tests/memo_sharding.rs`) asserts the two agree on
//! every fingerprint and every operation sequence.
//!
//! Hit/miss counters are surfaced as
//! [`MemoCacheStats`](crate::metrics::MemoCacheStats) through
//! [`SimCache::stats`].

use crate::metrics::{MemoCacheStats, SnapshotStats};
use crate::SimReport;
use simtune_isa::{EngineKind, Executable, RunLimits};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{LockResult, Mutex, MutexGuard};

/// Locks a shard even when a previous holder panicked: the guarded map
/// is plain data whose invariants hold between statements, and a
/// long-lived service must keep answering other tenants after one
/// tenant's thread dies mid-operation.
fn relock<T>(result: LockResult<MutexGuard<'_, T>>) -> MutexGuard<'_, T> {
    result.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Default lock-stripe count: enough that 16 workers rarely collide,
/// small enough that flushing or sizing the cache stays cheap.
const DEFAULT_SHARDS: usize = 16;

/// A shareable, thread-safe memo cache of simulation results.
///
/// Attach one to a session with
/// [`crate::SimSessionBuilder::memo_cache`]; share one `Arc<SimCache>`
/// across sessions (and across tuning loops) to deduplicate work
/// globally. Lookups and insertions are guarded per lock-striped shard
/// — the critical section is a hash-map probe, negligible next to a
/// backend execution, and concurrent workers only contend when their
/// fingerprints land on the same stripe.
///
/// Deduplication of *in-flight* work is handled one level up:
/// [`crate::SimSession`] resolves lookups at submission time and turns
/// duplicates of an executing fingerprint into followers of that
/// execution, so within one session a fingerprint simulates at most
/// once and the hit/miss counters are deterministic at every
/// `n_parallel` (for unbounded caches; see `crates/core/src/pool.rs`).
///
/// # Capacity and eviction
///
/// [`SimCache::new`] is unbounded: nothing is ever evicted, which is
/// right for tuning sessions whose candidate streams are bounded by
/// `n_trials`. Long-lived services should use [`SimCache::bounded`],
/// whose eviction contract is *epoch-based*: the cache holds at most
/// `max_entries` reports at any moment, and when an insert of a **new**
/// fingerprint arrives while the current generation is full, the whole
/// map (every shard) is flushed first and the next generation starts
/// cold (re-inserting an already-resident fingerprint never flushes).
/// Hit/miss counters survive flushes. Epoch eviction is deliberately
/// crude — O(1) amortized, no recency bookkeeping on the hot path — and
/// works because autotuning traffic is phase-local: the candidates worth
/// keeping re-enter within one batch after a flush.
///
/// # Example
///
/// A session with an attached cache answers a revisited candidate
/// without executing the backend again:
///
/// ```
/// use simtune_cache::HierarchyConfig;
/// use simtune_core::{SimCache, SimSession};
/// use simtune_isa::{Executable, Gpr, Inst, ProgramBuilder, TargetIsa};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), simtune_core::CoreError> {
/// let cache = Arc::new(SimCache::new());
/// let session = SimSession::builder()
///     .accurate(&HierarchyConfig::tiny_for_tests())
///     .memo_cache(cache.clone())
///     .build()?;
///
/// let mut b = ProgramBuilder::new();
/// b.push(Inst::Li { rd: Gpr(1), imm: 3 });
/// b.push(Inst::Halt);
/// let exe = Executable::new("demo", b.build().unwrap(), TargetIsa::riscv_u74());
///
/// let first = session.run(&[exe.clone()]).remove(0).expect("simulates");
/// let second = session.run(&[exe]).remove(0).expect("served from cache");
/// assert_eq!(first.stats, second.stats);
/// assert_eq!(cache.stats().misses, 1, "one backend execution");
/// assert_eq!(cache.stats().hits, 1, "one memoized replay");
/// # Ok(())
/// # }
/// ```
/// One lock stripe: fingerprint → memoized report.
type Shard = Mutex<HashMap<Vec<u8>, SimReport>>;

pub struct SimCache {
    shards: Box<[Shard]>,
    /// `shards.len() - 1`; the shard count is a power of two.
    mask: usize,
    max_entries: Option<usize>,
    /// Resident entries across all shards, maintained on insert/flush
    /// so the bounded-capacity check never locks every stripe.
    resident: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Snapshot persistence counters (see `crate::snapshot`).
    pub(crate) snap_loaded: AtomicU64,
    pub(crate) snap_rejected: AtomicU64,
    pub(crate) snap_saved: AtomicU64,
}

impl Default for SimCache {
    fn default() -> Self {
        SimCache::with_shards(DEFAULT_SHARDS)
    }
}

impl fmt::Debug for SimCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        f.debug_struct("SimCache")
            .field("entries", &self.len())
            .field("shards", &self.shards.len())
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .finish()
    }
}

impl SimCache {
    /// Creates an empty, unbounded cache with the default shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty, unbounded cache striped over `shards` locks
    /// (rounded up to a power of two, at least 1). `with_shards(1)` is
    /// the historical single-lock cache; higher counts only change
    /// contention, never observable behavior.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards > 0, "a cache needs at least one shard");
        let count = shards.next_power_of_two();
        SimCache {
            shards: (0..count).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: count - 1,
            max_entries: None,
            resident: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            snap_loaded: AtomicU64::new(0),
            snap_rejected: AtomicU64::new(0),
            snap_saved: AtomicU64::new(0),
        }
    }

    /// Creates a cache that never holds more than `max_entries` reports,
    /// with epoch eviction: inserting a **new** fingerprint into a full
    /// generation flushes the entire map first, and the next generation
    /// starts cold. Re-inserting a resident fingerprint never flushes,
    /// and the hit/miss counters survive flushes. See the
    /// [capacity and eviction](SimCache#capacity-and-eviction) contract.
    ///
    /// # Example
    ///
    /// ```
    /// use simtune_cache::HierarchyConfig;
    /// use simtune_core::{SimCache, SimSession};
    /// use simtune_isa::{Executable, Gpr, Inst, ProgramBuilder, TargetIsa};
    /// use std::sync::Arc;
    ///
    /// # fn main() -> Result<(), simtune_core::CoreError> {
    /// let exe = |imm: i64| {
    ///     let mut b = ProgramBuilder::new();
    ///     b.push(Inst::Li { rd: Gpr(1), imm });
    ///     b.push(Inst::Halt);
    ///     Executable::new("e", b.build().unwrap(), TargetIsa::riscv_u74())
    /// };
    /// let cache = Arc::new(SimCache::bounded(2));
    /// let session = SimSession::builder()
    ///     .accurate(&HierarchyConfig::tiny_for_tests())
    ///     .memo_cache(cache.clone())
    ///     .build()?;
    ///
    /// // Two distinct simulations fill the generation...
    /// session.run(&[exe(1), exe(2)]);
    /// assert_eq!(cache.len(), 2);
    /// // ...a third flushes it: only the newest report stays resident...
    /// session.run(&[exe(3)]);
    /// assert_eq!(cache.len(), 1);
    /// // ...so revisiting an evicted candidate misses and re-executes.
    /// let misses_before = cache.stats().misses;
    /// session.run(&[exe(1)]);
    /// assert_eq!(cache.stats().misses, misses_before + 1);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when `max_entries` is zero.
    pub fn bounded(max_entries: usize) -> Self {
        Self::bounded_with_shards(max_entries, DEFAULT_SHARDS)
    }

    /// [`SimCache::bounded`] with an explicit shard count (see
    /// [`SimCache::with_shards`]).
    ///
    /// # Panics
    ///
    /// Panics when `max_entries` or `shards` is zero.
    pub fn bounded_with_shards(max_entries: usize, shards: usize) -> Self {
        assert!(max_entries > 0, "a zero-capacity memo cache is useless");
        SimCache {
            max_entries: Some(max_entries),
            ..Self::with_shards(shards)
        }
    }

    /// Number of lock stripes (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Hit/miss counters accumulated over the cache's lifetime.
    pub fn stats(&self) -> MemoCacheStats {
        MemoCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Counters for the snapshot persistence path: entries loaded from
    /// disk, snapshots rejected (corrupt or version-mismatched, each a
    /// degraded cold start), and snapshots written.
    pub fn snapshot_stats(&self) -> SnapshotStats {
        SnapshotStats {
            loaded_entries: self.snap_loaded.load(Ordering::Relaxed),
            rejected_snapshots: self.snap_rejected.load(Ordering::Relaxed),
            saved_snapshots: self.snap_saved.load(Ordering::Relaxed),
        }
    }

    /// Number of memoized reports.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| relock(s.lock()).len()).sum()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        self.flush_all();
    }

    fn shard(&self, key: &[u8]) -> &Shard {
        // FNV-1a over the fingerprint bytes; the fingerprint already
        // contains every distinguishing byte, so any mixing hash
        // spreads stripes evenly.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h as usize) & self.mask]
    }

    /// Locks every shard in index order (the one consistent order, so
    /// two concurrent flushes cannot deadlock) and clears them all.
    fn flush_all(&self) {
        let mut guards: Vec<MutexGuard<'_, _>> =
            self.shards.iter().map(|s| relock(s.lock())).collect();
        for guard in &mut guards {
            guard.clear();
        }
        self.resident.store(0, Ordering::Relaxed);
    }

    /// Clones every resident entry, shard by shard — the snapshot
    /// writer's view. Entries inserted concurrently may or may not be
    /// included; each shard is internally consistent.
    pub(crate) fn export_entries(&self) -> Vec<(Vec<u8>, SimReport)> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let map = relock(shard.lock());
            out.extend(map.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out
    }

    /// Looks a fingerprint up, counting the hit or miss.
    pub fn lookup(&self, key: &[u8]) -> Option<SimReport> {
        let found = self.peek(key);
        match &found {
            Some(_) => self.note_hit(),
            None => self.note_miss(),
        }
        found
    }

    /// Looks a fingerprint up without touching the hit/miss counters —
    /// for callers (like the session's batch planner) that account for
    /// the outcome themselves.
    pub(crate) fn peek(&self, key: &[u8]) -> Option<SimReport> {
        relock(self.shard(key).lock()).get(key).cloned()
    }

    pub(crate) fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Atomically claims one resident slot, failing when a bounded
    /// cache is at capacity. The claim happens while the caller holds a
    /// shard lock, and `flush_all` holds *every* shard lock while it
    /// zeroes the counter — so a successful reservation cannot
    /// interleave with a flush, and concurrent inserters on different
    /// stripes can never overshoot `max_entries` together.
    fn try_reserve_slot(&self) -> bool {
        match self.max_entries {
            None => {
                self.resident.fetch_add(1, Ordering::Relaxed);
                true
            }
            Some(cap) => self
                .resident
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                    (n < cap).then_some(n + 1)
                })
                .is_ok(),
        }
    }

    /// Stores a report under a fingerprint, flushing the generation
    /// first when a bounded cache is full.
    pub fn insert(&self, mut key: Vec<u8>, report: SimReport) {
        use std::collections::hash_map::Entry;
        loop {
            key = {
                let mut map = relock(self.shard(&key).lock());
                match map.entry(key) {
                    Entry::Occupied(mut resident) => {
                        // Re-inserting a resident fingerprint never
                        // flushes.
                        resident.insert(report);
                        return;
                    }
                    Entry::Vacant(slot) => {
                        if self.try_reserve_slot() {
                            slot.insert(report);
                            return;
                        }
                        slot.into_key()
                    }
                }
            };
            // Full generation: release the stripe (flush_all locks
            // every shard in index order), flush, and retry — the next
            // iteration re-reserves against the empty generation (or
            // flushes again in the unlikely event racers refilled it).
            self.flush_all();
        }
    }
}

/// Builds the canonical fingerprint of one simulation request.
///
/// The full key (not a digest) is stored, so distinct simulations can
/// never collide. Public (re-exported as `memo_fingerprint`) so the
/// differential and property suites can assert the collision contract —
/// equal (program, data, target, fidelity digest, limits, engine)
/// collide, any differing component misses — directly against the real
/// key. `fidelity_digest` is the backend's
/// [`crate::SimBackend::fidelity_digest`]: one canonical string naming
/// the tier and every configuration knob.
pub fn fingerprint(
    exe: &Executable,
    fidelity_digest: &str,
    limits: &RunLimits,
    engine: EngineKind,
) -> Vec<u8> {
    let mut text = String::new();
    // Target ISA: everything that changes execution or fetch layout.
    let t = &exe.target;
    let _ = writeln!(
        text,
        "target={} lanes={} inst_bytes={}",
        t.name, t.vector_lanes, t.inst_bytes
    );
    let _ = writeln!(text, "fidelity=[{fidelity_digest}]");
    let _ = writeln!(text, "engine={}", engine.label());
    let _ = writeln!(text, "max_insts={}", limits.max_insts);
    // Program bytes: the disassembly listing is complete (every operand
    // and resolved branch target is printed) and canonical.
    text.push_str(&exe.program.disassemble());
    let mut key = text.into_bytes();
    // Data segments: bit-exact, so value-identical but bit-different
    // floats (e.g. -0.0 vs 0.0) fingerprint apart, matching simulator
    // behavior exactly.
    for (base, values) in &exe.data_segments {
        key.extend_from_slice(&base.to_le_bytes());
        key.extend_from_slice(&(values.len() as u64).to_le_bytes());
        for v in values {
            key.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Fidelity;
    use crate::SimBackend;
    use simtune_isa::{Gpr, Inst, ProgramBuilder, SimStats, TargetIsa};

    fn exe(name: &str, imm: i64, data: Vec<f32>) -> Executable {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Li { rd: Gpr(1), imm });
        b.push(Inst::Halt);
        Executable::new(name, b.build().unwrap(), TargetIsa::riscv_u74())
            .with_segment(0x100_0000, data)
    }

    fn key_of(e: &Executable) -> Vec<u8> {
        fingerprint(
            e,
            "accurate @ cfg",
            &RunLimits::default(),
            EngineKind::Decoded,
        )
    }

    #[test]
    fn fingerprint_ignores_name_but_covers_everything_else() {
        let a = exe("first", 7, vec![1.0, 2.0]);
        let renamed = exe("second", 7, vec![1.0, 2.0]);
        assert_eq!(key_of(&a), key_of(&renamed), "name must not matter");

        let other_prog = exe("first", 8, vec![1.0, 2.0]);
        assert_ne!(key_of(&a), key_of(&other_prog), "program must matter");

        let other_data = exe("first", 7, vec![1.0, 2.5]);
        assert_ne!(key_of(&a), key_of(&other_data), "data must matter");

        let mut other_target = exe("first", 7, vec![1.0, 2.0]);
        other_target.target = TargetIsa::x86_ryzen_5800x();
        assert_ne!(key_of(&a), key_of(&other_target), "target must matter");

        // Any change to the fidelity digest — tier, parameters or the
        // embedded hierarchy — must re-key the simulation.
        for digest in [
            "fast-count @ line_bytes=64",
            "accurate @ other-cfg",
            "pipelined:btb=512,ras=8 @ cfg",
            "pipelined:btb=256,ras=8 @ cfg",
        ] {
            let other = fingerprint(&a, digest, &RunLimits::default(), EngineKind::Decoded);
            assert_ne!(key_of(&a), other, "fidelity digest must matter ({digest})");
        }

        let other_limits = fingerprint(
            &a,
            "accurate @ cfg",
            &RunLimits { max_insts: 5 },
            EngineKind::Decoded,
        );
        assert_ne!(key_of(&a), other_limits, "limits must matter");

        for engine in [EngineKind::Interp, EngineKind::Threaded, EngineKind::Batch] {
            let other_engine = fingerprint(&a, "accurate @ cfg", &RunLimits::default(), engine);
            assert_ne!(key_of(&a), other_engine, "engine must matter ({engine})");
        }
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let cache = SimCache::new();
        let e = exe("e", 1, vec![]);
        let key = key_of(&e);
        assert!(cache.lookup(&key).is_none());
        let report = SimReport {
            stats: SimStats::default(),
            backend: "accurate".into(),
            fidelity: Fidelity::Accurate,
            extrapolated: false,
            cycles: None,
        };
        cache.insert(key.clone(), report.clone());
        assert_eq!(cache.lookup(&key).as_ref(), Some(&report));
        assert_eq!(cache.len(), 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.lookups(), 2);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn bounded_cache_flushes_full_generations() {
        let cache = SimCache::bounded(2);
        let report = SimReport {
            stats: SimStats::default(),
            backend: "accurate".into(),
            fidelity: Fidelity::Accurate,
            extrapolated: false,
            cycles: None,
        };
        let keys: Vec<Vec<u8>> = (0..3u8)
            .map(|i| key_of(&exe("e", i as i64, vec![])))
            .collect();
        cache.insert(keys[0].clone(), report.clone());
        cache.insert(keys[1].clone(), report.clone());
        assert_eq!(cache.len(), 2);
        // Re-inserting a resident key does not flush.
        cache.insert(keys[1].clone(), report.clone());
        assert_eq!(cache.len(), 2);
        // A new key at capacity flushes the generation first.
        cache.insert(keys[2].clone(), report.clone());
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(&keys[2]).is_some());
        assert!(cache.lookup(&keys[0]).is_none());
    }

    #[test]
    fn shard_counts_round_up_to_powers_of_two() {
        assert_eq!(SimCache::with_shards(1).shard_count(), 1);
        assert_eq!(SimCache::with_shards(3).shard_count(), 4);
        assert_eq!(SimCache::new().shard_count(), DEFAULT_SHARDS);
        assert_eq!(SimCache::bounded_with_shards(10, 5).shard_count(), 8);
    }

    #[test]
    fn sharded_and_single_lock_agree_on_a_spread_of_keys() {
        // The property test in tests/memo_sharding.rs covers arbitrary
        // interleavings; this is the deterministic smoke version.
        let single = SimCache::with_shards(1);
        let sharded = SimCache::with_shards(16);
        let report = |n: u64| SimReport {
            stats: SimStats {
                host_nanos: n,
                ..SimStats::default()
            },
            backend: "accurate".into(),
            fidelity: Fidelity::Accurate,
            extrapolated: false,
            cycles: None,
        };
        for i in 0..64u64 {
            let key = key_of(&exe("e", i as i64, vec![i as f32]));
            single.insert(key.clone(), report(i));
            sharded.insert(key.clone(), report(i));
            assert_eq!(single.lookup(&key), sharded.lookup(&key));
        }
        assert_eq!(single.len(), sharded.len());
        assert_eq!(single.stats(), sharded.stats());
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_is_rejected() {
        let _ = SimCache::bounded(0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_are_rejected() {
        let _ = SimCache::with_shards(0);
    }

    #[test]
    fn custom_backends_opt_out_by_default() {
        struct Opaque;
        impl SimBackend for Opaque {
            fn name(&self) -> &str {
                "opaque"
            }
            fn fidelity(&self) -> Fidelity {
                Fidelity::Custom
            }
            fn run_one(
                &self,
                _exe: &Executable,
                _limits: &RunLimits,
            ) -> Result<SimReport, crate::BackendError> {
                unreachable!("not exercised")
            }
        }
        assert_eq!(Opaque.memo_key(), None);
    }
}
