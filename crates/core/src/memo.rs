//! Cross-loop simulation memoization: a canonical-fingerprint →
//! [`SimReport`] cache shared by [`crate::SimSession`]s.
//!
//! Autotuning traffic revisits work constantly: fidelity escalation
//! re-simulates finalists, workflows re-collect groups they already
//! measured, repeated tuning sessions over one kernel re-propose
//! schedules the last session scored. Every such revisit used to pay a
//! full backend execution even though the simulator is deterministic —
//! identical program, input data, target, cache configuration, backend
//! and limits always produce identical statistics. [`SimCache`] turns
//! that determinism into speed: the first execution stores its
//! [`SimReport`] under a canonical fingerprint; every later lookup with
//! the same fingerprint returns the stored report without touching the
//! backend.
//!
//! # Fingerprint
//!
//! The key covers everything result-relevant and nothing else:
//!
//! * the program bytes (disassembly listing — complete and canonical,
//!   including resolved branch targets) and the target ISA,
//! * the prepared data segments (bit-exact `f32` contents),
//! * the backend name, fidelity and configuration digest
//!   ([`crate::SimBackend::memo_key`]),
//! * the [`RunLimits`].
//!
//! The executable's *name* is deliberately excluded: tuning loops stamp
//! a fresh name on every trial ("conv2d g3 t17"), and two differently
//! named builds of the same schedule are the same simulation.
//!
//! Backends whose results are not a pure function of the above opt out
//! by returning `None` from [`crate::SimBackend::memo_key`] (the default
//! — only the bundled deterministic tiers opt in), and cache hits are
//! byte-identical replays: even `host_nanos` is the stored value, so
//! downstream scoring sees exactly what a re-run of the original
//! simulation reported.
//!
//! Hit/miss counters are surfaced as
//! [`MemoCacheStats`](crate::metrics::MemoCacheStats) through
//! [`SimCache::stats`].

use crate::backend::Fidelity;
use crate::metrics::MemoCacheStats;
use crate::SimReport;
use simtune_isa::{Executable, RunLimits};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A shareable, thread-safe memo cache of simulation results.
///
/// Attach one to a session with
/// [`crate::SimSessionBuilder::memo_cache`]; share one `Arc<SimCache>`
/// across sessions (and across tuning loops) to deduplicate work
/// globally. Lookups and insertions are guarded by one mutex — the
/// critical section is a hash-map probe, negligible next to a backend
/// execution.
///
/// Deduplication is a convergence guarantee, not an in-flight one:
/// when several workers of one parallel batch carry the *same*
/// fingerprint, they can all miss before the first insert lands and
/// each execute the backend once. Results are identical either way and
/// every later batch hits. In practice the strategies' seen-sets keep
/// duplicates out of a single batch; revisits arrive in later batches,
/// where the cache is already warm.
///
/// # Capacity and eviction
///
/// [`SimCache::new`] is unbounded: nothing is ever evicted, which is
/// right for tuning sessions whose candidate streams are bounded by
/// `n_trials`. Long-lived services should use [`SimCache::bounded`],
/// whose eviction contract is *epoch-based*: the cache holds at most
/// `max_entries` reports at any moment, and when an insert of a **new**
/// fingerprint arrives while the current generation is full, the whole
/// map is flushed first and the next generation starts cold
/// (re-inserting an already-resident fingerprint never flushes).
/// Hit/miss counters survive flushes. Epoch eviction is deliberately
/// crude — O(1) amortized, no recency bookkeeping on the hot path — and
/// works because autotuning traffic is phase-local: the candidates worth
/// keeping re-enter within one batch after a flush.
///
/// # Example
///
/// A session with an attached cache answers a revisited candidate
/// without executing the backend again:
///
/// ```
/// use simtune_cache::HierarchyConfig;
/// use simtune_core::{SimCache, SimSession};
/// use simtune_isa::{Executable, Gpr, Inst, ProgramBuilder, TargetIsa};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), simtune_core::CoreError> {
/// let cache = Arc::new(SimCache::new());
/// let session = SimSession::builder()
///     .accurate(&HierarchyConfig::tiny_for_tests())
///     .memo_cache(cache.clone())
///     .build()?;
///
/// let mut b = ProgramBuilder::new();
/// b.push(Inst::Li { rd: Gpr(1), imm: 3 });
/// b.push(Inst::Halt);
/// let exe = Executable::new("demo", b.build().unwrap(), TargetIsa::riscv_u74());
///
/// let first = session.run(&[exe.clone()]).remove(0).expect("simulates");
/// let second = session.run(&[exe]).remove(0).expect("served from cache");
/// assert_eq!(first.stats, second.stats);
/// assert_eq!(cache.stats().misses, 1, "one backend execution");
/// assert_eq!(cache.stats().hits, 1, "one memoized replay");
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct SimCache {
    entries: Mutex<HashMap<Vec<u8>, SimReport>>,
    max_entries: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl fmt::Debug for SimCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        f.debug_struct("SimCache")
            .field("entries", &self.len())
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .finish()
    }
}

impl SimCache {
    /// Creates an empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a cache that never holds more than `max_entries` reports,
    /// with epoch eviction: inserting a **new** fingerprint into a full
    /// generation flushes the entire map first, and the next generation
    /// starts cold. Re-inserting a resident fingerprint never flushes,
    /// and the hit/miss counters survive flushes. See the
    /// [capacity and eviction](SimCache#capacity-and-eviction) contract.
    ///
    /// # Example
    ///
    /// ```
    /// use simtune_cache::HierarchyConfig;
    /// use simtune_core::{SimCache, SimSession};
    /// use simtune_isa::{Executable, Gpr, Inst, ProgramBuilder, TargetIsa};
    /// use std::sync::Arc;
    ///
    /// # fn main() -> Result<(), simtune_core::CoreError> {
    /// let exe = |imm: i64| {
    ///     let mut b = ProgramBuilder::new();
    ///     b.push(Inst::Li { rd: Gpr(1), imm });
    ///     b.push(Inst::Halt);
    ///     Executable::new("e", b.build().unwrap(), TargetIsa::riscv_u74())
    /// };
    /// let cache = Arc::new(SimCache::bounded(2));
    /// let session = SimSession::builder()
    ///     .accurate(&HierarchyConfig::tiny_for_tests())
    ///     .memo_cache(cache.clone())
    ///     .build()?;
    ///
    /// // Two distinct simulations fill the generation...
    /// session.run(&[exe(1), exe(2)]);
    /// assert_eq!(cache.len(), 2);
    /// // ...a third flushes it: only the newest report stays resident...
    /// session.run(&[exe(3)]);
    /// assert_eq!(cache.len(), 1);
    /// // ...so revisiting an evicted candidate misses and re-executes.
    /// let misses_before = cache.stats().misses;
    /// session.run(&[exe(1)]);
    /// assert_eq!(cache.stats().misses, misses_before + 1);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when `max_entries` is zero.
    pub fn bounded(max_entries: usize) -> Self {
        assert!(max_entries > 0, "a zero-capacity memo cache is useless");
        SimCache {
            max_entries: Some(max_entries),
            ..Self::default()
        }
    }

    /// Hit/miss counters accumulated over the cache's lifetime.
    pub fn stats(&self) -> MemoCacheStats {
        MemoCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of memoized reports.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("poisoned memo cache").len()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        self.entries.lock().expect("poisoned memo cache").clear();
    }

    /// Looks a fingerprint up, counting the hit or miss.
    pub(crate) fn lookup(&self, key: &[u8]) -> Option<SimReport> {
        let found = self
            .entries
            .lock()
            .expect("poisoned memo cache")
            .get(key)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a report under a fingerprint, flushing the generation
    /// first when a bounded cache is full.
    pub(crate) fn insert(&self, key: Vec<u8>, report: SimReport) {
        let mut entries = self.entries.lock().expect("poisoned memo cache");
        if let Some(cap) = self.max_entries {
            if entries.len() >= cap && !entries.contains_key(&key) {
                entries.clear();
            }
        }
        entries.insert(key, report);
    }
}

/// Builds the canonical fingerprint of one simulation request.
///
/// The full key (not a digest) is stored, so distinct simulations can
/// never collide.
pub(crate) fn fingerprint(
    exe: &Executable,
    backend_name: &str,
    fidelity: &Fidelity,
    config_digest: &str,
    limits: &RunLimits,
) -> Vec<u8> {
    let mut text = String::new();
    // Target ISA: everything that changes execution or fetch layout.
    let t = &exe.target;
    let _ = writeln!(
        text,
        "target={} lanes={} inst_bytes={}",
        t.name, t.vector_lanes, t.inst_bytes
    );
    let _ = writeln!(
        text,
        "backend={backend_name} fidelity={fidelity} config=[{config_digest}]"
    );
    let _ = writeln!(text, "max_insts={}", limits.max_insts);
    // Program bytes: the disassembly listing is complete (every operand
    // and resolved branch target is printed) and canonical.
    text.push_str(&exe.program.disassemble());
    let mut key = text.into_bytes();
    // Data segments: bit-exact, so value-identical but bit-different
    // floats (e.g. -0.0 vs 0.0) fingerprint apart, matching simulator
    // behavior exactly.
    for (base, values) in &exe.data_segments {
        key.extend_from_slice(&base.to_le_bytes());
        key.extend_from_slice(&(values.len() as u64).to_le_bytes());
        for v in values {
            key.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimBackend;
    use simtune_isa::{Gpr, Inst, ProgramBuilder, SimStats, TargetIsa};

    fn exe(name: &str, imm: i64, data: Vec<f32>) -> Executable {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Li { rd: Gpr(1), imm });
        b.push(Inst::Halt);
        Executable::new(name, b.build().unwrap(), TargetIsa::riscv_u74())
            .with_segment(0x100_0000, data)
    }

    fn key_of(e: &Executable) -> Vec<u8> {
        fingerprint(
            e,
            "accurate",
            &Fidelity::Accurate,
            "cfg",
            &RunLimits::default(),
        )
    }

    #[test]
    fn fingerprint_ignores_name_but_covers_everything_else() {
        let a = exe("first", 7, vec![1.0, 2.0]);
        let renamed = exe("second", 7, vec![1.0, 2.0]);
        assert_eq!(key_of(&a), key_of(&renamed), "name must not matter");

        let other_prog = exe("first", 8, vec![1.0, 2.0]);
        assert_ne!(key_of(&a), key_of(&other_prog), "program must matter");

        let other_data = exe("first", 7, vec![1.0, 2.5]);
        assert_ne!(key_of(&a), key_of(&other_data), "data must matter");

        let mut other_target = exe("first", 7, vec![1.0, 2.0]);
        other_target.target = TargetIsa::x86_ryzen_5800x();
        assert_ne!(key_of(&a), key_of(&other_target), "target must matter");

        let other_backend = fingerprint(
            &a,
            "fast-count",
            &Fidelity::CountOnly,
            "cfg",
            &RunLimits::default(),
        );
        assert_ne!(key_of(&a), other_backend, "backend must matter");

        let other_config = fingerprint(
            &a,
            "accurate",
            &Fidelity::Accurate,
            "other-cfg",
            &RunLimits::default(),
        );
        assert_ne!(key_of(&a), other_config, "backend config must matter");

        let other_limits = fingerprint(
            &a,
            "accurate",
            &Fidelity::Accurate,
            "cfg",
            &RunLimits { max_insts: 5 },
        );
        assert_ne!(key_of(&a), other_limits, "limits must matter");
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let cache = SimCache::new();
        let e = exe("e", 1, vec![]);
        let key = key_of(&e);
        assert!(cache.lookup(&key).is_none());
        let report = SimReport {
            stats: SimStats::default(),
            backend: "accurate".into(),
            fidelity: Fidelity::Accurate,
            extrapolated: false,
        };
        cache.insert(key.clone(), report.clone());
        assert_eq!(cache.lookup(&key).as_ref(), Some(&report));
        assert_eq!(cache.len(), 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.lookups(), 2);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn bounded_cache_flushes_full_generations() {
        let cache = SimCache::bounded(2);
        let report = SimReport {
            stats: SimStats::default(),
            backend: "accurate".into(),
            fidelity: Fidelity::Accurate,
            extrapolated: false,
        };
        let keys: Vec<Vec<u8>> = (0..3u8)
            .map(|i| key_of(&exe("e", i as i64, vec![])))
            .collect();
        cache.insert(keys[0].clone(), report.clone());
        cache.insert(keys[1].clone(), report.clone());
        assert_eq!(cache.len(), 2);
        // Re-inserting a resident key does not flush.
        cache.insert(keys[1].clone(), report.clone());
        assert_eq!(cache.len(), 2);
        // A new key at capacity flushes the generation first.
        cache.insert(keys[2].clone(), report.clone());
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(&keys[2]).is_some());
        assert!(cache.lookup(&keys[0]).is_none());
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_is_rejected() {
        let _ = SimCache::bounded(0);
    }

    #[test]
    fn custom_backends_opt_out_by_default() {
        struct Opaque;
        impl SimBackend for Opaque {
            fn name(&self) -> &str {
                "opaque"
            }
            fn fidelity(&self) -> Fidelity {
                Fidelity::Custom
            }
            fn run_one(
                &self,
                _exe: &Executable,
                _limits: &RunLimits,
            ) -> Result<SimReport, crate::BackendError> {
                unreachable!("not exercised")
            }
        }
        assert_eq!(Opaque.memo_key(), None);
    }
}
