//! End-to-end workflows: data collection, the paper's evaluation
//! protocol, and the held-out-group experiment of Figure 5.

use crate::backend::SimSession;
use crate::features::FeatureConfig;
use crate::metrics::{prediction_metrics, PredictionMetrics};
use crate::runner::{HardwareRunner, KernelBuilder};
use crate::score::{GroupData, ScorePredictor};
use crate::search::{RandomSearch, SearchStrategy, SketchSpace};
use crate::CoreError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simtune_hw::TargetSpec;
use simtune_linalg::stats::{argsort, median};
use simtune_predict::PredictorKind;
use simtune_tensor::{ComputeDef, SketchGenerator};

/// Options for collecting one group's dataset (training phase of
/// Fig. 4: run every implementation on the simulator *and* the target).
#[derive(Debug, Clone)]
pub struct CollectOptions {
    /// Implementations to gather (the paper uses 500 per group).
    pub n_impls: usize,
    /// Parallel simulator instances.
    pub n_parallel: usize,
    /// Base seed (sketch sampling, measurement noise).
    pub seed: u64,
    /// Give up after this many sketch attempts per accepted one.
    pub max_attempts_factor: usize,
    /// Simulation memo cache shared with other workflow phases; see
    /// [`crate::TuneOptions::memo_cache`]. `None` disables memoization.
    pub memo_cache: Option<std::sync::Arc<crate::SimCache>>,
}

impl Default for CollectOptions {
    fn default() -> Self {
        CollectOptions {
            n_impls: 100,
            n_parallel: 8,
            seed: 1,
            max_attempts_factor: 30,
            memo_cache: None,
        }
    }
}

/// Generates, builds, simulates and measures `n_impls` distinct
/// implementations of `def` for the target `spec`.
///
/// # Errors
///
/// Returns [`CoreError::Pipeline`] when not enough distinct valid
/// schedules can be generated, and propagates build/run errors that
/// affect every candidate.
pub fn collect_group_data(
    def: &ComputeDef,
    spec: &TargetSpec,
    group_id: usize,
    opts: &CollectOptions,
) -> Result<GroupData, CoreError> {
    let generator = SketchGenerator::new(def, spec.isa.clone());
    // Sample distinct, valid schedules through the shared RandomSearch
    // strategy — the same sampling loop that used to live inline here,
    // extracted so collection, tuning and template search all draw
    // candidates through one subsystem. Seed derivation, deduplication
    // key and rng stream are unchanged, so datasets collected before the
    // extraction reproduce bit-identically.
    let mut sampler = RandomSearch::new(
        SketchSpace::new(generator.clone()),
        opts.seed.wrapping_add(group_id as u64 * 7919),
    )
    .with_attempts_factor(opts.max_attempts_factor);
    let mut schedules = Vec::with_capacity(opts.n_impls);
    // The historical give-up bound: at most n_impls * factor raw draws
    // in total, however many of them deduplication or schedule
    // validation rejects (checked between batches, so one in-flight
    // batch may overshoot slightly).
    let max_attempts = opts.n_impls * opts.max_attempts_factor;
    while schedules.len() < opts.n_impls && sampler.attempts() < max_attempts {
        let want = opts.n_impls - schedules.len();
        let batch = sampler.propose(&[], want);
        if batch.is_empty() {
            break; // space exhausted or per-batch attempt budget spent
        }
        for params in batch {
            let schedule = generator.schedule(&params);
            if schedule.apply(def, &spec.isa).is_ok() {
                schedules.push((format!("{params:?}"), schedule));
            }
        }
    }
    if schedules.len() < opts.n_impls.min(8) {
        return Err(CoreError::Pipeline(format!(
            "only {} valid schedules after {} attempts",
            schedules.len(),
            sampler.attempts()
        )));
    }

    // Build and simulate, pipelined: executables are submitted to the
    // session's persistent pool chunk-wise, so chunk k simulates in
    // parallel (Contribution I) while chunk k+1 is still being built on
    // this thread. Training labels must come from the reference
    // backend: predictors are fit against accurate cache statistics.
    let sim = SimSession::builder()
        .accurate(&spec.hierarchy)
        .n_parallel(opts.n_parallel)
        .memo_cache_opt(opts.memo_cache.clone())
        .build()?;
    let builder = KernelBuilder::new(def.clone(), spec.isa.clone());
    let chunk_len = (opts.n_parallel.max(1) * 4).max(8);
    let mut exes = Vec::new();
    let mut descriptions = Vec::new();
    let mut tickets = Vec::new();
    let mut chunk = Vec::new();
    for (i, (desc, schedule)) in schedules.iter().enumerate() {
        match builder.build(schedule, &format!("{}g{group_id}i{i}", def.name)) {
            Ok(e) => {
                // The hardware runner below needs every executable too,
                // so the simulator chunks are clones (cheap next to the
                // build, and next to the simulation they overlap).
                chunk.push(e.clone());
                exes.push(e);
                descriptions.push(desc.clone());
            }
            Err(_) => continue, // failed builds are dropped, like in TVM
        }
        if chunk.len() >= chunk_len {
            tickets.push(sim.submit(std::mem::take(&mut chunk)));
        }
    }
    if !chunk.is_empty() {
        tickets.push(sim.submit(chunk));
    }
    let sim_results: Vec<Result<simtune_isa::SimStats, CoreError>> = tickets
        .into_iter()
        .flat_map(|t| t.wait())
        .map(|r| r.map(|report| report.stats))
        .collect();

    // Measure sequentially on the emulated board.
    let hw = HardwareRunner {
        noise_seed: opts.seed ^ 0xAB5E,
        ..HardwareRunner::new(spec.clone())
    };
    let measurements = hw.run(&exes);

    let mut data = GroupData {
        group_id,
        ..GroupData::default()
    };
    for ((sim_r, hw_r), desc) in sim_results.into_iter().zip(measurements).zip(descriptions) {
        let (Ok(stats), Ok(m)) = (sim_r, hw_r) else {
            continue;
        };
        data.sim_seconds.push(stats.host_seconds());
        data.stats.push(stats);
        data.t_ref.push(m.t_ref);
        data.base_seconds.push(m.base_seconds);
        data.descriptions.push(desc);
    }
    if data.is_empty() {
        return Err(CoreError::Pipeline("no implementation survived".into()));
    }
    Ok(data)
}

/// Deterministic train/test split: returns `(train, test)` index sets
/// with exactly `test_count` test samples.
///
/// # Panics
///
/// Panics if `test_count >= n`.
pub fn split_train_test(n: usize, test_count: usize, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(test_count < n, "test split must leave training data");
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        idx.swap(i, rng.gen_range(0..=i));
    }
    let test = idx[..test_count].to_vec();
    let train = idx[test_count..].to_vec();
    (train, test)
}

/// Result of the paper's evaluation protocol for one predictor on one
/// architecture: per-group metrics, median over the random splits.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Which predictor was evaluated.
    pub kind: PredictorKind,
    /// Median metrics per group, in group order.
    pub per_group: Vec<PredictionMetrics>,
}

impl EvalReport {
    /// Mean `E_top1` across groups (used in the paper's prose).
    pub fn mean_e_top1(&self) -> f64 {
        self.per_group.iter().map(|m| m.e_top1).sum::<f64>() / self.per_group.len() as f64
    }

    /// Maximum `R_top1` across groups.
    pub fn max_r_top1(&self) -> f64 {
        self.per_group
            .iter()
            .map(|m| m.r_top1)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Runs the Tables III–V protocol: `rounds` random train/test splits;
/// each round trains one predictor per architecture on the training
/// parts of *all* groups and scores the test part of each group; the
/// reported metric per group is the median over rounds.
///
/// # Errors
///
/// Propagates training failures.
#[allow(clippy::too_many_arguments)] // mirrors the paper's protocol knobs 1:1
pub fn evaluate_predictor(
    kind: PredictorKind,
    groups: &[GroupData],
    arch: &str,
    kernel_type: &str,
    test_count: usize,
    rounds: usize,
    seed: u64,
    feature_config: FeatureConfig,
) -> Result<EvalReport, CoreError> {
    let mut per_round: Vec<Vec<PredictionMetrics>> = vec![Vec::new(); groups.len()];
    for round in 0..rounds {
        let round_seed = seed.wrapping_add(round as u64 * 0x1009);
        let splits: Vec<(Vec<usize>, Vec<usize>)> = groups
            .iter()
            .map(|g| {
                split_train_test(
                    g.len(),
                    test_count.min(g.len().saturating_sub(1)).max(1),
                    round_seed.wrapping_add(g.group_id as u64),
                )
            })
            .collect();
        let train_groups: Vec<GroupData> = groups
            .iter()
            .zip(&splits)
            .map(|(g, (train, _))| g.subset(train))
            .collect();
        let mut predictor = ScorePredictor::new(kind, arch, kernel_type, round_seed)
            .with_feature_config(feature_config);
        predictor.train(&train_groups)?;
        for ((g, (_, test)), slot) in groups.iter().zip(&splits).zip(per_round.iter_mut()) {
            let test_data = g.subset(test);
            let scores = predictor.score_group(&test_data.stats)?;
            slot.push(prediction_metrics(&test_data.t_ref, &scores));
        }
    }
    let per_group = per_round
        .into_iter()
        .map(|ms| PredictionMetrics {
            e_top1: median(&ms.iter().map(|m| m.e_top1).collect::<Vec<_>>()),
            q_low: median(&ms.iter().map(|m| m.q_low).collect::<Vec<_>>()),
            q_high: median(&ms.iter().map(|m| m.q_high).collect::<Vec<_>>()),
            r_top1: median(&ms.iter().map(|m| m.r_top1).collect::<Vec<_>>()),
        })
        .collect();
    Ok(EvalReport { kind, per_group })
}

/// One data series of Figure 5: reference times sorted ascending and
/// the same times ordered by predicted score.
#[derive(Debug, Clone, PartialEq)]
pub struct SortedPrediction {
    /// `t_ref` sorted ascending (the black reference line).
    pub sorted_ref: Vec<f64>,
    /// `t_ref` ordered by ascending predicted score (`t_pred` series).
    pub prediction_ordered: Vec<f64>,
}

/// The Figure 5 experiment: train a predictor on `train_groups`
/// (optionally *excluding* the evaluation group, Section IV-A) and
/// produce the sorted-prediction curves for `eval_group`'s test subset.
///
/// # Errors
///
/// Propagates training failures.
pub fn holdout_group_curves(
    kind: PredictorKind,
    train_groups: &[GroupData],
    eval_group: &GroupData,
    eval_indices: &[usize],
    arch: &str,
    kernel_type: &str,
    seed: u64,
) -> Result<SortedPrediction, CoreError> {
    let mut predictor = ScorePredictor::new(kind, arch, kernel_type, seed);
    predictor.train(train_groups)?;
    let test = eval_group.subset(eval_indices);
    let scores = predictor.score_group(&test.stats)?;
    let mut sorted_ref = test.t_ref.clone();
    sorted_ref.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let order = argsort(&scores);
    let prediction_ordered = order.iter().map(|&i| test.t_ref[i]).collect();
    Ok(SortedPrediction {
        sorted_ref,
        prediction_ordered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtune_tensor::{matmul, Conv2dShape};
    use std::collections::HashSet;

    fn tiny_conv_def() -> ComputeDef {
        simtune_tensor::conv2d_bias_relu(&Conv2dShape {
            n: 1,
            h: 6,
            w: 8,
            co: 4,
            ci: 3,
            kh: 3,
            kw: 3,
            stride: (1, 1),
            pad: (1, 1),
        })
    }

    fn tiny_opts(n: usize) -> CollectOptions {
        CollectOptions {
            n_impls: n,
            n_parallel: 4,
            seed: 11,
            max_attempts_factor: 40,
            ..CollectOptions::default()
        }
    }

    #[test]
    fn collect_produces_consistent_group_data() {
        let def = tiny_conv_def();
        let spec = TargetSpec::riscv_u74();
        let data = collect_group_data(&def, &spec, 0, &tiny_opts(12)).unwrap();
        assert!(data.len() >= 8, "collected {}", data.len());
        assert_eq!(data.stats.len(), data.t_ref.len());
        assert_eq!(data.stats.len(), data.sim_seconds.len());
        assert!(data.t_ref.iter().all(|&t| t > 0.0));
        assert!(data.sim_seconds.iter().all(|&t| t > 0.0));
        // Implementations differ: instruction totals are not all equal.
        let totals: HashSet<u64> = data.stats.iter().map(|s| s.inst_mix.total()).collect();
        assert!(totals.len() > 1);
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let (train, test) = split_train_test(50, 10, 3);
        assert_eq!(train.len(), 40);
        assert_eq!(test.len(), 10);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
        // Deterministic per seed.
        assert_eq!(split_train_test(50, 10, 3), (train, test));
    }

    #[test]
    fn evaluate_predictor_end_to_end_small() {
        let def = matmul(8, 8, 8);
        let spec = TargetSpec::riscv_u74();
        let data = collect_group_data(&def, &spec, 0, &tiny_opts(20)).unwrap();
        let report = evaluate_predictor(
            PredictorKind::LinReg,
            std::slice::from_ref(&data),
            "riscv",
            "matmul",
            5,
            3,
            7,
            FeatureConfig::default(),
        )
        .unwrap();
        assert_eq!(report.per_group.len(), 1);
        let m = &report.per_group[0];
        assert!(m.r_top1 > 0.0 && m.r_top1 <= 100.0);
        assert!(m.e_top1 >= 0.0);
    }

    #[test]
    fn holdout_curves_have_matching_lengths() {
        let def = matmul(8, 8, 8);
        let spec = TargetSpec::riscv_u74();
        let data = collect_group_data(&def, &spec, 0, &tiny_opts(16)).unwrap();
        let (_, test) = split_train_test(data.len(), 5, 1);
        let curves = holdout_group_curves(
            PredictorKind::LinReg,
            std::slice::from_ref(&data),
            &data,
            &test,
            "riscv",
            "matmul",
            2,
        )
        .unwrap();
        assert_eq!(curves.sorted_ref.len(), 5);
        assert_eq!(curves.prediction_ordered.len(), 5);
        // sorted_ref is ascending.
        for w in curves.sorted_ref.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // Both are permutations of the same multiset.
        let mut a = curves.sorted_ref.clone();
        let mut b = curves.prediction_ordered.clone();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, b);
    }
}
