//! Minimal diagnostics shim: warnings go to stderr in production and
//! into a thread-local buffer under [`capture`], so tests (and the
//! serve loop's tests in particular) can assert on degraded-mode
//! messages — e.g. a refused cache snapshot logging a cold start —
//! without scraping the process's stderr.

use std::cell::RefCell;

thread_local! {
    static CAPTURE: RefCell<Option<Vec<String>>> = const { RefCell::new(None) };
}

/// Emits a warning: `simtune: {msg}` on stderr, or into the active
/// [`capture`] buffer when one is installed on this thread.
pub fn warn(msg: impl Into<String>) {
    let msg = msg.into();
    let captured = CAPTURE.with(|c| match c.borrow_mut().as_mut() {
        Some(buf) => {
            buf.push(msg.clone());
            true
        }
        None => false,
    });
    if !captured {
        eprintln!("simtune: {msg}");
    }
}

/// Runs `f` with warnings captured on this thread, returning its result
/// together with every message [`warn`] emitted during the call.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Vec<String>) {
    struct Restore(Option<Vec<String>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CAPTURE.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let previous = CAPTURE.with(|c| c.borrow_mut().replace(Vec::new()));
    let guard = Restore(previous);
    let r = f();
    let logs = CAPTURE.with(|c| c.borrow_mut().replace(Vec::new()).unwrap_or_default());
    drop(guard);
    (r, logs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_collects_warnings_and_restores_passthrough() {
        let ((), logs) = capture(|| {
            warn("first");
            warn(format!("second {}", 2));
        });
        assert_eq!(logs, ["first", "second 2"]);
        // After capture ends, warn must not panic (stderr path).
        warn("uncaptured");
    }

    #[test]
    fn nested_captures_do_not_leak_into_each_other() {
        let ((), outer) = capture(|| {
            warn("outer-1");
            let ((), inner) = capture(|| warn("inner"));
            assert_eq!(inner, ["inner"]);
            warn("outer-2");
        });
        assert_eq!(outer, ["outer-1", "outer-2"]);
    }
}
