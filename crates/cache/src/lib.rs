//! Parameterizable N-way set-associative cache hierarchy model.
//!
//! This crate is the stand-in for gem5's classic cache system in the paper:
//! the instruction-accurate simulator replicates the *geometry* of the
//! target CPU's caches (Table I of the paper) and reports, per cache, the
//! read/write hit, miss and replacement counts that feed the score
//! predictor (Section III-D).
//!
//! The model is deliberately functional rather than timed: an access either
//! hits or walks down the hierarchy, and the only outputs are statistics.
//! Timing is layered on top by `simtune-hw`.
//!
//! # Example
//!
//! ```
//! use simtune_cache::{CacheHierarchy, HierarchyConfig, ServicedBy};
//!
//! let mut h = CacheHierarchy::new(HierarchyConfig::x86_ryzen_5800x());
//! // First touch misses all the way to memory...
//! assert_eq!(h.data_read(0x1000), ServicedBy::Memory);
//! // ...the second touch of the same line hits in L1D.
//! assert_eq!(h.data_read(0x1008), ServicedBy::L1d);
//! assert_eq!(h.stats().l1d.read_hits, 1);
//! ```

mod cache;
mod config;
mod hierarchy;
mod replacement;
mod stats;

pub use cache::{AccessKind, Cache, CacheOutcome};
pub use config::{CacheConfig, ConfigError, HierarchyConfig};
pub use hierarchy::{CacheHierarchy, ServicedBy};
pub use replacement::ReplacementPolicy;
pub use stats::{CacheStats, HierarchyStats};

/// Iterator over the cache-line base addresses touched by an access of
/// `size` bytes at `addr` for a given line size.
///
/// Scalar accesses touch one line; vector loads/stores may straddle a line
/// boundary and touch two.
///
/// # Example
///
/// ```
/// let lines: Vec<u64> = simtune_cache::lines_touched(60, 8, 64).collect();
/// assert_eq!(lines, vec![0, 64]);
/// ```
pub fn lines_touched(addr: u64, size: u64, line_bytes: u64) -> impl Iterator<Item = u64> {
    debug_assert!(line_bytes.is_power_of_two());
    let first = addr & !(line_bytes - 1);
    let last = (addr + size.max(1) - 1) & !(line_bytes - 1);
    (0..)
        .map(move |i| first + i * line_bytes)
        .take_while(move |&l| l <= last)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_touched_single_line() {
        let v: Vec<u64> = lines_touched(64, 4, 64).collect();
        assert_eq!(v, vec![64]);
    }

    #[test]
    fn lines_touched_straddles_boundary() {
        let v: Vec<u64> = lines_touched(126, 8, 64).collect();
        assert_eq!(v, vec![64, 128]);
    }

    #[test]
    fn lines_touched_zero_size_counts_one_line() {
        let v: Vec<u64> = lines_touched(10, 0, 64).collect();
        assert_eq!(v, vec![0]);
    }
}
