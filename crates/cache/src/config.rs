use crate::ReplacementPolicy;
use std::error::Error;
use std::fmt;

/// Geometry of a single cache (one row of the paper's Table I).
///
/// The invariant `size_bytes == num_sets * associativity * line_bytes` is
/// enforced by [`CacheConfig::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Human-readable label used in statistics dumps ("L1D", "L2", ...).
    pub name: String,
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Number of sets (must be a power of two so the index is a bit-slice).
    pub num_sets: u64,
    /// Ways per set.
    pub associativity: u64,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: u64,
    /// Replacement policy for this cache.
    pub policy: ReplacementPolicy,
}

/// Errors raised when validating cache or hierarchy configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `size != sets * assoc * line`.
    InconsistentGeometry {
        /// The offending configuration's name.
        name: String,
        /// Declared total size.
        size_bytes: u64,
        /// Size implied by `sets * assoc * line`.
        implied_bytes: u64,
    },
    /// Sets or line size is not a power of two, or a field is zero.
    InvalidField {
        /// The offending configuration's name.
        name: String,
        /// Description of the violated constraint.
        reason: &'static str,
    },
    /// Hierarchy levels disagree on the line size.
    LineSizeMismatch,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::InconsistentGeometry {
                name,
                size_bytes,
                implied_bytes,
            } => write!(
                f,
                "cache {name}: declared size {size_bytes} B but sets*assoc*line = {implied_bytes} B"
            ),
            ConfigError::InvalidField { name, reason } => {
                write!(f, "cache {name}: {reason}")
            }
            ConfigError::LineSizeMismatch => {
                write!(f, "all hierarchy levels must share one line size")
            }
        }
    }
}

impl Error for ConfigError {}

impl CacheConfig {
    /// Creates a validated cache configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any field is zero, `num_sets` or
    /// `line_bytes` is not a power of two, or the geometry is inconsistent.
    pub fn new(
        name: impl Into<String>,
        size_bytes: u64,
        num_sets: u64,
        associativity: u64,
        line_bytes: u64,
        policy: ReplacementPolicy,
    ) -> Result<Self, ConfigError> {
        let name = name.into();
        if size_bytes == 0 || num_sets == 0 || associativity == 0 || line_bytes == 0 {
            return Err(ConfigError::InvalidField {
                name,
                reason: "all geometry fields must be non-zero",
            });
        }
        if !num_sets.is_power_of_two() {
            return Err(ConfigError::InvalidField {
                name,
                reason: "num_sets must be a power of two",
            });
        }
        if !line_bytes.is_power_of_two() {
            return Err(ConfigError::InvalidField {
                name,
                reason: "line_bytes must be a power of two",
            });
        }
        let implied = num_sets * associativity * line_bytes;
        if implied != size_bytes {
            return Err(ConfigError::InconsistentGeometry {
                name,
                size_bytes,
                implied_bytes: implied,
            });
        }
        Ok(CacheConfig {
            name,
            size_bytes,
            num_sets,
            associativity,
            line_bytes,
            policy,
        })
    }

    /// Returns a copy with a different replacement policy (useful for the
    /// replacement-policy ablation experiment).
    pub fn with_policy(&self, policy: ReplacementPolicy) -> Self {
        CacheConfig {
            policy,
            ..self.clone()
        }
    }
}

/// Configuration of a full hierarchy: split L1, unified L2 and optional L3.
///
/// The presets mirror Table I of the paper exactly; all line sizes are
/// 64 B as stated there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Short target label ("x86", "arm", "riscv").
    pub name: String,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Optional last-level cache (present on the x86 target only).
    pub l3: Option<CacheConfig>,
}

const KIB: u64 = 1024;

impl HierarchyConfig {
    /// Validates that all levels share one line size.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::LineSizeMismatch`] when levels disagree.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let line = self.l1d.line_bytes;
        let mut ok = self.l1i.line_bytes == line && self.l2.line_bytes == line;
        if let Some(l3) = &self.l3 {
            ok &= l3.line_bytes == line;
        }
        if ok {
            Ok(())
        } else {
            Err(ConfigError::LineSizeMismatch)
        }
    }

    /// Shared line size of the hierarchy in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.l1d.line_bytes
    }

    /// Table I, x86 row: AMD Ryzen 7 5800X.
    /// L1D 32K/64s/8w, L1I 32K/64s/8w, L2 512K/1024s/8w, L3 32768K/32768s/16w.
    pub fn x86_ryzen_5800x() -> Self {
        let p = ReplacementPolicy::Lru;
        HierarchyConfig {
            name: "x86".into(),
            l1d: CacheConfig::new("L1D", 32 * KIB, 64, 8, 64, p).expect("preset"),
            l1i: CacheConfig::new("L1I", 32 * KIB, 64, 8, 64, p).expect("preset"),
            l2: CacheConfig::new("L2", 512 * KIB, 1024, 8, 64, p).expect("preset"),
            l3: Some(CacheConfig::new("L3", 32768 * KIB, 32768, 16, 64, p).expect("preset")),
        }
    }

    /// Table I, ARM row: Raspberry Pi 4 (Cortex-A72).
    /// L1D 32K/256s/2w, L1I 48K/256s/3w, L2 1024K/1024s/16w, no L3.
    pub fn arm_cortex_a72() -> Self {
        let p = ReplacementPolicy::Lru;
        HierarchyConfig {
            name: "arm".into(),
            l1d: CacheConfig::new("L1D", 32 * KIB, 256, 2, 64, p).expect("preset"),
            l1i: CacheConfig::new("L1I", 48 * KIB, 256, 3, 64, p).expect("preset"),
            l2: CacheConfig::new("L2", 1024 * KIB, 1024, 16, 64, p).expect("preset"),
            l3: None,
        }
    }

    /// Table I, RISC-V row: SiFive U74-MC.
    /// L1D 32K/64s/8w, L1I 32K/64s/8w, L2 2048K/2048s/16w, no L3.
    pub fn riscv_u74() -> Self {
        let p = ReplacementPolicy::Lru;
        HierarchyConfig {
            name: "riscv".into(),
            l1d: CacheConfig::new("L1D", 32 * KIB, 64, 8, 64, p).expect("preset"),
            l1i: CacheConfig::new("L1I", 32 * KIB, 64, 8, 64, p).expect("preset"),
            l2: CacheConfig::new("L2", 2048 * KIB, 2048, 16, 64, p).expect("preset"),
            l3: None,
        }
    }

    /// All three paper presets, in the order used by the result tables.
    pub fn paper_presets() -> Vec<HierarchyConfig> {
        vec![
            Self::x86_ryzen_5800x(),
            Self::arm_cortex_a72(),
            Self::riscv_u74(),
        ]
    }

    /// A tiny hierarchy for fast unit tests (not a paper target).
    pub fn tiny_for_tests() -> Self {
        let p = ReplacementPolicy::Lru;
        HierarchyConfig {
            name: "tiny".into(),
            l1d: CacheConfig::new("L1D", KIB, 4, 4, 64, p).expect("preset"),
            l1i: CacheConfig::new("L1I", KIB, 4, 4, 64, p).expect("preset"),
            l2: CacheConfig::new("L2", 8 * KIB, 32, 4, 64, p).expect("preset"),
            l3: None,
        }
    }

    /// Returns a copy with every level switched to `policy` (for the
    /// replacement-policy ablation).
    pub fn with_policy(&self, policy: ReplacementPolicy) -> Self {
        HierarchyConfig {
            name: self.name.clone(),
            l1d: self.l1d.with_policy(policy),
            l1i: self.l1i.with_policy(policy),
            l2: self.l2.with_policy(policy),
            l3: self.l3.as_ref().map(|c| c.with_policy(policy)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_must_be_consistent() {
        let err = CacheConfig::new("bad", 32 * KIB, 64, 4, 64, ReplacementPolicy::Lru);
        assert!(matches!(err, Err(ConfigError::InconsistentGeometry { .. })));
    }

    #[test]
    fn rejects_non_power_of_two_sets() {
        let err = CacheConfig::new("bad", 3 * 64 * 64, 3, 64, 64, ReplacementPolicy::Lru);
        assert!(matches!(err, Err(ConfigError::InvalidField { .. })));
    }

    #[test]
    fn rejects_zero_fields() {
        let err = CacheConfig::new("bad", 0, 0, 0, 0, ReplacementPolicy::Lru);
        assert!(matches!(err, Err(ConfigError::InvalidField { .. })));
    }

    #[test]
    fn paper_presets_match_table_i() {
        let x86 = HierarchyConfig::x86_ryzen_5800x();
        assert_eq!(x86.l1d.size_bytes, 32 * KIB);
        assert_eq!(x86.l1d.num_sets, 64);
        assert_eq!(x86.l1d.associativity, 8);
        let l3 = x86.l3.as_ref().expect("x86 has an L3");
        assert_eq!(l3.size_bytes, 32768 * KIB);
        assert_eq!(l3.num_sets, 32768);
        assert_eq!(l3.associativity, 16);

        let arm = HierarchyConfig::arm_cortex_a72();
        assert_eq!(arm.l1d.associativity, 2);
        assert_eq!(arm.l1i.size_bytes, 48 * KIB);
        assert_eq!(arm.l1i.associativity, 3);
        assert_eq!(arm.l2.size_bytes, 1024 * KIB);
        assert!(arm.l3.is_none());

        let riscv = HierarchyConfig::riscv_u74();
        assert_eq!(riscv.l2.size_bytes, 2048 * KIB);
        assert_eq!(riscv.l2.num_sets, 2048);
        assert!(riscv.l3.is_none());
    }

    #[test]
    fn all_presets_validate_with_64b_lines() {
        for preset in HierarchyConfig::paper_presets() {
            preset.validate().expect("preset must validate");
            assert_eq!(preset.line_bytes(), 64);
        }
    }

    #[test]
    fn with_policy_switches_every_level() {
        let h = HierarchyConfig::x86_ryzen_5800x().with_policy(ReplacementPolicy::Fifo);
        assert_eq!(h.l1d.policy, ReplacementPolicy::Fifo);
        assert_eq!(h.l2.policy, ReplacementPolicy::Fifo);
        assert_eq!(h.l3.unwrap().policy, ReplacementPolicy::Fifo);
    }
}
