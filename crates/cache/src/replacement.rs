/// Replacement policy for a set-associative cache.
///
/// The paper's gem5 setup uses the classic cache's default LRU; the other
/// policies exist for the replacement-policy ablation experiment and to
/// model targets whose L1 uses pseudo-random replacement (as some ARM
/// cores do).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used way (gem5 classic default).
    #[default]
    Lru,
    /// Evict the way filled the longest ago regardless of later touches.
    Fifo,
    /// Evict a pseudo-randomly chosen way (deterministic xorshift stream).
    Random,
    /// Tree pseudo-LRU for power-of-two associativities; falls back to
    /// true LRU otherwise (e.g. the 3-way ARM L1I).
    TreePlru,
}

impl ReplacementPolicy {
    /// All policies, for ablation sweeps.
    pub fn all() -> [ReplacementPolicy; 4] {
        [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
            ReplacementPolicy::TreePlru,
        ]
    }

    /// Short lowercase label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::Fifo => "fifo",
            ReplacementPolicy::Random => "random",
            ReplacementPolicy::TreePlru => "plru",
        }
    }
}

impl std::fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-set replacement bookkeeping.
///
/// One `SetState` instance lives alongside each set's way array. The cache
/// calls [`SetState::on_access`] on every hit or fill and asks
/// [`SetState::victim`] for the way to evict when the set is full.
#[derive(Debug, Clone)]
pub(crate) struct SetState {
    policy: ReplacementPolicy,
    /// LRU: last-touch tick per way. FIFO: fill tick per way.
    ticks: Vec<u64>,
    /// Tree-PLRU node bits (only used when associativity is a power of two
    /// greater than one).
    plru_bits: u64,
}

impl SetState {
    pub(crate) fn new(policy: ReplacementPolicy, ways: usize) -> Self {
        SetState {
            policy,
            ticks: vec![0; ways],
            plru_bits: 0,
        }
    }

    /// Records a touch of `way` at logical time `tick`. `fill` is true when
    /// the touch is a line fill rather than a hit (FIFO only advances on
    /// fills).
    pub(crate) fn on_access(&mut self, way: usize, tick: u64, fill: bool) {
        match self.policy {
            ReplacementPolicy::Lru => self.ticks[way] = tick,
            ReplacementPolicy::Fifo => {
                if fill {
                    self.ticks[way] = tick;
                }
            }
            ReplacementPolicy::Random => {}
            ReplacementPolicy::TreePlru => {
                let n = self.ticks.len();
                if n.is_power_of_two() && n > 1 {
                    self.plru_touch(way);
                } else {
                    self.ticks[way] = tick; // LRU fallback
                }
            }
        }
    }

    /// Chooses the victim way for a full set. `rng_draw` is a fresh
    /// pseudo-random value supplied by the cache (used only by `Random`).
    pub(crate) fn victim(&self, rng_draw: u64) -> usize {
        let n = self.ticks.len();
        match self.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => self.oldest(),
            ReplacementPolicy::Random => (rng_draw % n as u64) as usize,
            ReplacementPolicy::TreePlru => {
                if n.is_power_of_two() && n > 1 {
                    self.plru_victim()
                } else {
                    self.oldest()
                }
            }
        }
    }

    fn oldest(&self) -> usize {
        self.ticks
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Walk the PLRU tree from the root towards `way`, flipping each node
    /// to point *away* from the path taken.
    fn plru_touch(&mut self, way: usize) {
        let n = self.ticks.len();
        let levels = n.trailing_zeros();
        let mut node = 0usize; // root of the implicit binary tree
        for level in 0..levels {
            let bit_of_way = (way >> (levels - 1 - level)) & 1;
            if bit_of_way == 0 {
                self.plru_bits |= 1 << node; // point at right subtree
            } else {
                self.plru_bits &= !(1 << node); // point at left subtree
            }
            node = 2 * node + 1 + bit_of_way;
        }
    }

    /// Follow the PLRU pointers from the root to a leaf.
    fn plru_victim(&self) -> usize {
        let n = self.ticks.len();
        let levels = n.trailing_zeros();
        let mut node = 0usize;
        let mut way = 0usize;
        for _ in 0..levels {
            let bit = ((self.plru_bits >> node) & 1) as usize;
            way = (way << 1) | bit;
            node = 2 * node + 1 + bit;
        }
        way
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut s = SetState::new(ReplacementPolicy::Lru, 4);
        for (tick, way) in [(1, 0), (2, 1), (3, 2), (4, 3), (5, 0)] {
            s.on_access(way, tick, false);
        }
        // Way 1 was touched at tick 2, the oldest.
        assert_eq!(s.victim(0), 1);
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut s = SetState::new(ReplacementPolicy::Fifo, 2);
        s.on_access(0, 1, true); // fill way 0 first
        s.on_access(1, 2, true); // fill way 1 second
        s.on_access(0, 3, false); // hit on way 0 must not refresh it
        assert_eq!(s.victim(0), 0);
    }

    #[test]
    fn random_uses_the_draw() {
        let s = SetState::new(ReplacementPolicy::Random, 4);
        assert_eq!(s.victim(0), 0);
        assert_eq!(s.victim(5), 1);
        assert_eq!(s.victim(7), 3);
    }

    #[test]
    fn plru_cycles_through_all_ways() {
        // Touch each chosen victim: over `n` evictions every way must be
        // chosen exactly once (standard tree-PLRU property starting from a
        // cold state).
        let mut s = SetState::new(ReplacementPolicy::TreePlru, 8);
        let mut seen = std::collections::HashSet::new();
        for tick in 0..8 {
            let v = s.victim(0);
            assert!(seen.insert(v), "way {v} evicted twice");
            s.on_access(v, tick, true);
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn plru_with_non_power_of_two_falls_back_to_lru() {
        let mut s = SetState::new(ReplacementPolicy::TreePlru, 3);
        s.on_access(0, 10, false);
        s.on_access(1, 11, false);
        s.on_access(2, 12, false);
        assert_eq!(s.victim(0), 0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ReplacementPolicy::Lru.to_string(), "lru");
        assert_eq!(ReplacementPolicy::all().len(), 4);
    }
}
