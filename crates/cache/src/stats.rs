/// Hit/miss/replacement counters for one cache, split by access kind.
///
/// These are exactly the quantities the paper's predictor consumes
/// (Section III-D): "cache read/write replacements/hits/misses divided by
/// read/write accesses of each cache". The ratios are provided as methods
/// with a zero-access guard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read accesses that hit.
    pub read_hits: u64,
    /// Read accesses that missed.
    pub read_misses: u64,
    /// Read misses that evicted a valid line.
    pub read_replacements: u64,
    /// Write accesses that hit.
    pub write_hits: u64,
    /// Write accesses that missed.
    pub write_misses: u64,
    /// Write misses that evicted a valid line.
    pub write_replacements: u64,
}

impl CacheStats {
    /// Total read accesses.
    pub fn read_accesses(&self) -> u64 {
        self.read_hits + self.read_misses
    }

    /// Total write accesses.
    pub fn write_accesses(&self) -> u64 {
        self.write_hits + self.write_misses
    }

    /// Total accesses of both kinds.
    pub fn accesses(&self) -> u64 {
        self.read_accesses() + self.write_accesses()
    }

    /// Read hits / read accesses (0 when there were no reads).
    pub fn read_hit_ratio(&self) -> f64 {
        ratio(self.read_hits, self.read_accesses())
    }

    /// Read misses / read accesses (0 when there were no reads).
    pub fn read_miss_ratio(&self) -> f64 {
        ratio(self.read_misses, self.read_accesses())
    }

    /// Read replacements / read accesses (0 when there were no reads).
    pub fn read_replacement_ratio(&self) -> f64 {
        ratio(self.read_replacements, self.read_accesses())
    }

    /// Write hits / write accesses (0 when there were no writes).
    pub fn write_hit_ratio(&self) -> f64 {
        ratio(self.write_hits, self.write_accesses())
    }

    /// Write misses / write accesses (0 when there were no writes).
    pub fn write_miss_ratio(&self) -> f64 {
        ratio(self.write_misses, self.write_accesses())
    }

    /// Write replacements / write accesses (0 when there were no writes).
    pub fn write_replacement_ratio(&self) -> f64 {
        ratio(self.write_replacements, self.write_accesses())
    }

    /// The six predictor input ratios in a fixed order:
    /// `[rd_hit, rd_miss, rd_repl, wr_hit, wr_miss, wr_repl]`.
    pub fn ratio_vector(&self) -> [f64; 6] {
        [
            self.read_hit_ratio(),
            self.read_miss_ratio(),
            self.read_replacement_ratio(),
            self.write_hit_ratio(),
            self.write_miss_ratio(),
            self.write_replacement_ratio(),
        ]
    }

    /// Element-wise sum, used when aggregating per-thread statistics.
    pub fn merged(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            read_hits: self.read_hits + other.read_hits,
            read_misses: self.read_misses + other.read_misses,
            read_replacements: self.read_replacements + other.read_replacements,
            write_hits: self.write_hits + other.write_hits,
            write_misses: self.write_misses + other.write_misses,
            write_replacements: self.write_replacements + other.write_replacements,
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Statistics for a whole hierarchy plus the memory interface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1 data cache counters.
    pub l1d: CacheStats,
    /// L1 instruction cache counters.
    pub l1i: CacheStats,
    /// Unified L2 counters.
    pub l2: CacheStats,
    /// Optional L3 counters (x86 target only).
    pub l3: Option<CacheStats>,
    /// Line fills served by DRAM.
    pub dram_reads: u64,
    /// Dirty lines written back to DRAM.
    pub dram_writes: u64,
}

impl HierarchyStats {
    /// Named (label, stats) pairs for all present levels, in order.
    pub fn levels(&self) -> Vec<(&'static str, CacheStats)> {
        let mut v = vec![("L1D", self.l1d), ("L1I", self.l1i), ("L2", self.l2)];
        if let Some(l3) = self.l3 {
            v.push(("L3", l3));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_guard_division_by_zero() {
        let s = CacheStats::default();
        assert_eq!(s.read_hit_ratio(), 0.0);
        assert_eq!(s.write_miss_ratio(), 0.0);
    }

    #[test]
    fn ratios_sum_to_one_when_active() {
        let s = CacheStats {
            read_hits: 30,
            read_misses: 10,
            read_replacements: 5,
            write_hits: 6,
            write_misses: 2,
            write_replacements: 1,
        };
        assert!((s.read_hit_ratio() + s.read_miss_ratio() - 1.0).abs() < 1e-15);
        assert!((s.write_hit_ratio() + s.write_miss_ratio() - 1.0).abs() < 1e-15);
        assert_eq!(s.accesses(), 48);
        assert_eq!(s.ratio_vector()[2], 5.0 / 40.0);
    }

    #[test]
    fn merged_adds_counters() {
        let a = CacheStats {
            read_hits: 1,
            write_misses: 2,
            ..Default::default()
        };
        let b = CacheStats {
            read_hits: 3,
            write_misses: 4,
            ..Default::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.read_hits, 4);
        assert_eq!(m.write_misses, 6);
    }

    #[test]
    fn levels_include_l3_only_when_present() {
        let mut h = HierarchyStats::default();
        assert_eq!(h.levels().len(), 3);
        h.l3 = Some(CacheStats::default());
        assert_eq!(h.levels().len(), 4);
    }
}
