use crate::replacement::SetState;
use crate::{CacheConfig, CacheStats};

/// Kind of a cache access, as seen by one cache level.
///
/// Instruction fetches are issued to the L1I as [`AccessKind::Read`] by the
/// hierarchy; write-backs arriving from an upper level are
/// [`AccessKind::Write`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Load or instruction fetch.
    Read,
    /// Store or write-back from an upper level.
    Write,
}

/// Result of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Base address of a dirty line evicted by the fill, if any. The
    /// hierarchy forwards it to the next level as a write (write-back).
    pub writeback: Option<u64>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
}

/// One N-way set-associative, write-back, write-allocate cache.
///
/// Addresses are byte addresses; the cache operates on aligned lines.
/// Misses allocate (fill) the line immediately — the atomic-mode
/// abstraction of gem5, where an access completes in a single transaction.
///
/// # Example
///
/// ```
/// use simtune_cache::{AccessKind, Cache, CacheConfig, ReplacementPolicy};
///
/// # fn main() -> Result<(), simtune_cache::ConfigError> {
/// let cfg = CacheConfig::new("L1D", 1024, 4, 4, 64, ReplacementPolicy::Lru)?;
/// let mut c = Cache::new(cfg);
/// assert!(!c.access(0x40, AccessKind::Read).hit);
/// assert!(c.access(0x40, AccessKind::Read).hit);
/// assert_eq!(c.stats().read_hits, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    states: Vec<SetState>,
    stats: CacheStats,
    tick: u64,
    rng_state: u64,
    line_shift: u32,
    set_mask: u64,
}

impl Cache {
    /// Creates an empty (all-invalid) cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let ways = config.associativity as usize;
        let nsets = config.num_sets as usize;
        let sets = vec![vec![Line::default(); ways]; nsets];
        let states = vec![SetState::new(config.policy, ways); nsets];
        let line_shift = config.line_bytes.trailing_zeros();
        let set_mask = config.num_sets - 1;
        Cache {
            config,
            sets,
            states,
            stats: CacheStats::default(),
            tick: 0,
            // Arbitrary non-zero seed; deterministic across runs.
            rng_state: 0x2545F4914F6CDD1D,
            line_shift,
            set_mask,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics but keeps cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidates every line (the paper flushes caches before each
    /// benchmark repetition). Dirty data is dropped, not written back,
    /// because the model carries no payload bytes.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for line in set {
                *line = Line::default();
            }
        }
    }

    /// True if the line containing `addr` is currently resident (test and
    /// debugging aid; does not touch statistics or replacement state).
    pub fn contains(&self, addr: u64) -> bool {
        let (set, tag) = self.locate(addr);
        self.sets[set].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Performs one access. On a miss the line is allocated immediately;
    /// if the victim was valid, the replacement is counted and, if the
    /// victim was dirty, its base address is returned for write-back.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> CacheOutcome {
        self.tick += 1;
        let (set_idx, tag) = self.locate(addr);
        let set_bits = self.set_mask.count_ones();
        let line_shift = self.line_shift;
        let set = &mut self.sets[set_idx];
        let state = &mut self.states[set_idx];

        // Hit path.
        if let Some(way) = set.iter().position(|l| l.valid && l.tag == tag) {
            state.on_access(way, self.tick, false);
            if kind == AccessKind::Write {
                set[way].dirty = true;
                self.stats.write_hits += 1;
            } else {
                self.stats.read_hits += 1;
            }
            return CacheOutcome {
                hit: true,
                writeback: None,
            };
        }

        // Miss: pick a way (an invalid one if available, otherwise the
        // policy's victim), fill it, and report any dirty eviction.
        let way = match set.iter().position(|l| !l.valid) {
            Some(w) => w,
            None => {
                self.rng_state ^= self.rng_state << 13;
                self.rng_state ^= self.rng_state >> 7;
                self.rng_state ^= self.rng_state << 17;
                state.victim(self.rng_state)
            }
        };
        let victim = set[way];
        let replaced = victim.valid;
        let writeback = if victim.valid && victim.dirty {
            Some(((victim.tag << set_bits) | set_idx as u64) << line_shift)
        } else {
            None
        };
        set[way] = Line {
            valid: true,
            dirty: kind == AccessKind::Write,
            tag,
        };
        state.on_access(way, self.tick, true);
        match kind {
            AccessKind::Read => {
                self.stats.read_misses += 1;
                if replaced {
                    self.stats.read_replacements += 1;
                }
            }
            AccessKind::Write => {
                self.stats.write_misses += 1;
                if replaced {
                    self.stats.write_replacements += 1;
                }
            }
        }
        CacheOutcome {
            hit: false,
            writeback,
        }
    }

    fn locate(&self, addr: u64) -> (usize, u64) {
        let line_addr = addr >> self.line_shift;
        let set = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.set_mask.count_ones();
        (set, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReplacementPolicy;

    fn small(policy: ReplacementPolicy) -> Cache {
        // 2 sets x 2 ways x 64 B lines = 256 B.
        Cache::new(CacheConfig::new("t", 256, 2, 2, 64, policy).expect("valid"))
    }

    #[test]
    fn miss_then_hit_same_line() {
        let mut c = small(ReplacementPolicy::Lru);
        assert!(!c.access(0, AccessKind::Read).hit);
        assert!(c.access(63, AccessKind::Read).hit, "same line must hit");
        assert!(!c.access(64, AccessKind::Read).hit, "next line is a miss");
    }

    #[test]
    fn conflict_eviction_in_one_set() {
        let mut c = small(ReplacementPolicy::Lru);
        // Set 0 holds lines with addresses 0, 128, 256, ... (2 sets, 64 B).
        c.access(0, AccessKind::Read);
        c.access(128, AccessKind::Read);
        // Third distinct line in set 0 evicts the LRU (address 0).
        let out = c.access(256, AccessKind::Read);
        assert!(!out.hit);
        assert!(!c.contains(0), "LRU line must be gone");
        assert!(c.contains(128));
        assert!(c.contains(256));
        assert_eq!(c.stats().read_replacements, 1);
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = small(ReplacementPolicy::Lru);
        c.access(0, AccessKind::Write); // dirty line at 0
        c.access(128, AccessKind::Read);
        let out = c.access(256, AccessKind::Read);
        assert_eq!(out.writeback, Some(0), "dirty victim must be written back");
        // Clean eviction produces no write-back.
        let out2 = c.access(384, AccessKind::Read); // evicts 128 (clean)
        assert_eq!(out2.writeback, None);
    }

    #[test]
    fn write_hit_marks_line_dirty() {
        let mut c = small(ReplacementPolicy::Lru);
        c.access(0, AccessKind::Read); // clean fill
        c.access(0, AccessKind::Write); // dirty it via a hit
        c.access(128, AccessKind::Read);
        let out = c.access(256, AccessKind::Read);
        assert_eq!(out.writeback, Some(0));
    }

    #[test]
    fn stats_split_by_kind() {
        let mut c = small(ReplacementPolicy::Lru);
        c.access(0, AccessKind::Read);
        c.access(0, AccessKind::Write);
        c.access(64, AccessKind::Write);
        let s = *c.stats();
        assert_eq!(s.read_misses, 1);
        assert_eq!(s.write_hits, 1);
        assert_eq!(s.write_misses, 1);
        assert_eq!(s.accesses(), 3);
    }

    #[test]
    fn flush_invalidates_everything() {
        let mut c = small(ReplacementPolicy::Lru);
        c.access(0, AccessKind::Write);
        assert!(c.contains(0));
        c.flush();
        assert!(!c.contains(0));
        assert!(!c.access(0, AccessKind::Read).hit);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = small(ReplacementPolicy::Lru);
        c.access(0, AccessKind::Read);
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
        assert!(c.access(0, AccessKind::Read).hit);
    }

    #[test]
    fn occupancy_never_exceeds_associativity() {
        let mut c = small(ReplacementPolicy::Random);
        for i in 0..100u64 {
            c.access(i * 64, AccessKind::Read);
        }
        // 2 sets x 2 ways: at most 4 lines resident.
        let resident = (0..100u64).filter(|i| c.contains(i * 64)).count();
        assert!(resident <= 4, "resident {resident} > capacity");
    }

    #[test]
    fn address_reconstruction_roundtrip() {
        let mut c = Cache::new(
            CacheConfig::new("t", 4096, 16, 4, 64, ReplacementPolicy::Lru).expect("valid"),
        );
        // Fill one set with dirty lines, then overflow and verify the
        // write-back address is a line the set actually held.
        let base = 7 * 64; // set 7
        let stride = 16 * 64;
        for w in 0..4u64 {
            c.access(base + w * stride, AccessKind::Write);
        }
        let out = c.access(base + 4 * stride, AccessKind::Write);
        let wb = out.writeback.expect("victim was dirty");
        assert_eq!(wb, base, "LRU victim is the first line filled");
    }
}
