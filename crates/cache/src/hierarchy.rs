use crate::{AccessKind, Cache, HierarchyConfig, HierarchyStats};

/// The hierarchy level that ultimately serviced an access.
///
/// The instruction-accurate simulator ignores this (it only keeps
/// statistics), but the timing models in `simtune-hw` convert it into a
/// latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ServicedBy {
    /// Hit in the L1 data cache.
    L1d,
    /// Hit in the L1 instruction cache.
    L1i,
    /// Hit in the unified L2.
    L2,
    /// Hit in the last-level cache.
    L3,
    /// Line fill from DRAM.
    Memory,
}

/// A multi-level cache hierarchy: split L1 (I/D), unified L2, optional L3,
/// write-back/write-allocate at every level, non-inclusive fills.
///
/// Matches the structure of Figure 3 in the paper ("typical cache
/// hierarchies of modern CPUs") with single-core occupancy, since the
/// paper's workloads are single-threaded.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    config: HierarchyConfig,
    l1d: Cache,
    l1i: Cache,
    l2: Cache,
    l3: Option<Cache>,
    dram_reads: u64,
    dram_writes: u64,
    counting: Option<AccessCounters>,
}

/// Raw access counters kept when the hierarchy runs in counting-only
/// mode: no tag arrays are consulted, every access "misses to memory".
#[derive(Debug, Clone, Copy, Default)]
struct AccessCounters {
    data_reads: u64,
    data_writes: u64,
    fetches: u64,
}

impl CacheHierarchy {
    /// Builds an empty hierarchy from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`HierarchyConfig::validate`]; construct
    /// configurations through [`crate::CacheConfig::new`] to avoid this.
    pub fn new(config: HierarchyConfig) -> Self {
        config
            .validate()
            .expect("hierarchy configuration must validate");
        CacheHierarchy {
            l1d: Cache::new(config.l1d.clone()),
            l1i: Cache::new(config.l1i.clone()),
            l2: Cache::new(config.l2.clone()),
            l3: config.l3.clone().map(Cache::new),
            config,
            dram_reads: 0,
            dram_writes: 0,
            counting: None,
        }
    }

    /// Builds a counting-only hierarchy: accesses are tallied but no
    /// cache model exists (no tag arrays, no replacement state). Every
    /// access reports [`ServicedBy::Memory`]. This is the QEMU-plugin
    /// flavor of instrumentation the fast-count simulator backend uses;
    /// only `line_bytes` matters, because it determines how many lines a
    /// vector access touches (and must match the reference hierarchy for
    /// access counts to be comparable).
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    pub fn counting_only(line_bytes: u64) -> Self {
        let policy = crate::ReplacementPolicy::Lru;
        let line = crate::CacheConfig::new("count", line_bytes, 1, 1, line_bytes, policy)
            .expect("line_bytes must be a power of two");
        let config = HierarchyConfig {
            name: "counting-only".into(),
            l1d: line.clone(),
            l1i: line.clone(),
            l2: line,
            l3: None,
        };
        CacheHierarchy {
            counting: Some(AccessCounters::default()),
            ..CacheHierarchy::new(config)
        }
    }

    /// True when the hierarchy only counts accesses (no cache model).
    pub fn is_counting_only(&self) -> bool {
        self.counting.is_some()
    }

    /// Credits `n` instruction fetches at once. Only meaningful in
    /// counting-only mode, where the fetch stream is a pure tally (every
    /// fetch "misses to memory"), so a replay engine that knows how many
    /// µops a lane attempted may account them in one call with
    /// bit-identical statistics. No-op when a real cache model is
    /// attached — tag state depends on per-access addresses there, and
    /// callers must take the per-fetch path.
    pub fn bulk_fetches(&mut self, n: u64) {
        if let Some(c) = &mut self.counting {
            c.fetches += n;
            self.dram_reads += n;
        }
    }

    /// The hierarchy's configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Shared line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.config.line_bytes()
    }

    /// Data-side read (scalar or one line of a vector access).
    pub fn data_read(&mut self, addr: u64) -> ServicedBy {
        if let Some(c) = &mut self.counting {
            c.data_reads += 1;
            self.dram_reads += 1;
            return ServicedBy::Memory;
        }
        let out = self.l1d.access(addr, AccessKind::Read);
        if let Some(wb) = out.writeback {
            self.backing_write(wb);
        }
        if out.hit {
            ServicedBy::L1d
        } else {
            self.backing_read(addr)
        }
    }

    /// Data-side write. Write-allocate: a store miss fills the line (the
    /// fill is a read against the levels below), then dirties it in L1D.
    pub fn data_write(&mut self, addr: u64) -> ServicedBy {
        if let Some(c) = &mut self.counting {
            c.data_writes += 1;
            self.dram_writes += 1;
            return ServicedBy::Memory;
        }
        let out = self.l1d.access(addr, AccessKind::Write);
        if let Some(wb) = out.writeback {
            self.backing_write(wb);
        }
        if out.hit {
            ServicedBy::L1d
        } else {
            self.backing_read(addr)
        }
    }

    /// Instruction fetch: read against L1I, then the unified levels.
    pub fn fetch(&mut self, addr: u64) -> ServicedBy {
        if let Some(c) = &mut self.counting {
            c.fetches += 1;
            self.dram_reads += 1;
            return ServicedBy::Memory;
        }
        let out = self.l1i.access(addr, AccessKind::Read);
        if let Some(wb) = out.writeback {
            self.backing_write(wb);
        }
        if out.hit {
            ServicedBy::L1i
        } else {
            self.backing_read(addr)
        }
    }

    /// Fill walk below L1: L2, then L3, then DRAM.
    fn backing_read(&mut self, addr: u64) -> ServicedBy {
        let out2 = self.l2.access(addr, AccessKind::Read);
        if let Some(wb) = out2.writeback {
            self.l3_or_dram_write(wb);
        }
        if out2.hit {
            return ServicedBy::L2;
        }
        match &mut self.l3 {
            Some(l3) => {
                let out3 = l3.access(addr, AccessKind::Read);
                if out3.writeback.is_some() {
                    self.dram_writes += 1;
                }
                if out3.hit {
                    ServicedBy::L3
                } else {
                    self.dram_reads += 1;
                    ServicedBy::Memory
                }
            }
            None => {
                self.dram_reads += 1;
                ServicedBy::Memory
            }
        }
    }

    /// A dirty line evicted from L1 is written to L2 (possibly cascading).
    fn backing_write(&mut self, addr: u64) {
        let out = self.l2.access(addr, AccessKind::Write);
        if let Some(wb) = out.writeback {
            self.l3_or_dram_write(wb);
        }
        // A write miss in L2 allocated the line there; no further action —
        // payload-free model, the fill needs no data movement.
    }

    fn l3_or_dram_write(&mut self, addr: u64) {
        match &mut self.l3 {
            Some(l3) => {
                let out = l3.access(addr, AccessKind::Write);
                if out.writeback.is_some() {
                    self.dram_writes += 1;
                }
            }
            None => self.dram_writes += 1,
        }
    }

    /// Snapshot of all counters.
    ///
    /// In counting-only mode every access is reported as a miss of the
    /// corresponding L1 (reads/writes in L1D, fetches in L1I): the raw
    /// access totals stay meaningful while hit/replacement counters — the
    /// quantities a cache *model* would produce — remain zero.
    pub fn stats(&self) -> HierarchyStats {
        if let Some(c) = &self.counting {
            return HierarchyStats {
                l1d: crate::CacheStats {
                    read_misses: c.data_reads,
                    write_misses: c.data_writes,
                    ..Default::default()
                },
                l1i: crate::CacheStats {
                    read_misses: c.fetches,
                    ..Default::default()
                },
                l2: crate::CacheStats::default(),
                l3: None,
                dram_reads: self.dram_reads,
                dram_writes: self.dram_writes,
            };
        }
        HierarchyStats {
            l1d: *self.l1d.stats(),
            l1i: *self.l1i.stats(),
            l2: *self.l2.stats(),
            l3: self.l3.as_ref().map(|c| *c.stats()),
            dram_reads: self.dram_reads,
            dram_writes: self.dram_writes,
        }
    }

    /// Clears statistics, keeping cache contents.
    pub fn reset_stats(&mut self) {
        if let Some(c) = &mut self.counting {
            *c = AccessCounters::default();
        }
        self.l1d.reset_stats();
        self.l1i.reset_stats();
        self.l2.reset_stats();
        if let Some(l3) = &mut self.l3 {
            l3.reset_stats();
        }
        self.dram_reads = 0;
        self.dram_writes = 0;
    }

    /// Invalidates all levels (paper: caches are flushed before each
    /// repetition).
    pub fn flush(&mut self) {
        self.l1d.flush();
        self.l1i.flush();
        self.l2.flush();
        if let Some(l3) = &mut self.l3 {
            l3.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HierarchyConfig;

    #[test]
    fn read_walks_down_and_refills() {
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny_for_tests());
        assert_eq!(h.data_read(0), ServicedBy::Memory);
        assert_eq!(h.data_read(0), ServicedBy::L1d);
        let s = h.stats();
        assert_eq!(s.l1d.read_misses, 1);
        assert_eq!(s.l1d.read_hits, 1);
        assert_eq!(s.l2.read_misses, 1);
        assert_eq!(s.dram_reads, 1);
    }

    #[test]
    fn l2_serves_after_l1_conflict_eviction() {
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny_for_tests());
        // Tiny L1D: 4 sets x 4 ways. Touch 5 lines mapping to set 0
        // (stride = 4 sets * 64 B = 256 B) to evict address 0 from L1.
        for i in 0..5u64 {
            h.data_read(i * 256);
        }
        // Address 0 is gone from L1D but still in the bigger L2.
        assert_eq!(h.data_read(0), ServicedBy::L2);
    }

    #[test]
    fn fetch_uses_l1i_then_unified_l2() {
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny_for_tests());
        assert_eq!(h.fetch(0x100), ServicedBy::Memory);
        assert_eq!(h.fetch(0x100), ServicedBy::L1i);
        // The same line is now also in L2: a *data* read of it hits L2
        // (unified lower level shared by both L1s).
        assert_eq!(h.data_read(0x100), ServicedBy::L2);
        assert_eq!(h.stats().l1i.read_accesses(), 2);
    }

    #[test]
    fn x86_hierarchy_exposes_l3() {
        let mut h = CacheHierarchy::new(HierarchyConfig::x86_ryzen_5800x());
        h.data_read(0);
        let s = h.stats();
        assert!(s.l3.is_some());
        assert_eq!(s.l3.expect("l3").read_misses, 1);
        assert_eq!(s.dram_reads, 1);
    }

    #[test]
    fn dirty_writeback_reaches_dram_on_l3_free_targets() {
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny_for_tests());
        // Dirty many conflicting lines in L1D set 0; evictions write back
        // to L2. Then overflow L2's set with more dirty lines until L2
        // evicts to DRAM. Tiny L2: 32 sets x 4 ways, stride 32*64 = 2048.
        for i in 0..16u64 {
            h.data_write(i * 2048); // all map to L1D set 0 and L2 set 0
        }
        let s = h.stats();
        assert!(s.l1d.write_replacements > 0, "L1D must have evicted");
        assert!(s.l2.write_accesses() > 0, "L2 must have seen write-backs");
        assert!(s.dram_writes > 0, "L2 dirty evictions must hit DRAM");
    }

    #[test]
    fn flush_and_reset_are_independent() {
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny_for_tests());
        h.data_read(0);
        h.flush();
        h.reset_stats();
        assert_eq!(h.stats().l1d.accesses(), 0);
        assert_eq!(h.data_read(0), ServicedBy::Memory);
    }

    #[test]
    fn counting_only_tallies_without_cache_model() {
        let mut h = CacheHierarchy::counting_only(64);
        assert!(h.is_counting_only());
        // Repeated touches of the same line never turn into hits.
        assert_eq!(h.data_read(0), ServicedBy::Memory);
        assert_eq!(h.data_read(0), ServicedBy::Memory);
        assert_eq!(h.data_write(0), ServicedBy::Memory);
        assert_eq!(h.fetch(0x100), ServicedBy::Memory);
        let s = h.stats();
        assert_eq!(s.l1d.read_misses, 2);
        assert_eq!(s.l1d.write_misses, 1);
        assert_eq!(s.l1i.read_misses, 1);
        assert_eq!(s.l1d.read_hits + s.l1d.write_hits + s.l1i.read_hits, 0);
        // Every access — fetches included — goes to memory.
        assert_eq!(s.dram_reads, 3);
        assert_eq!(s.dram_writes, 1);
        // Line size is honored (it drives lines_touched in the CPU).
        assert_eq!(h.line_bytes(), 64);
        h.reset_stats();
        assert_eq!(h.stats().l1d.read_misses, 0);
    }

    #[test]
    fn write_allocate_fills_line() {
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny_for_tests());
        assert_eq!(h.data_write(0x40), ServicedBy::Memory);
        // After the allocating store, a load of the same line hits L1D.
        assert_eq!(h.data_read(0x40), ServicedBy::L1d);
    }
}
