//! Eviction-order tests: each replacement policy is driven through a
//! scripted access trace on a single-set cache, and the exact sequence
//! of evicted lines is checked (not just hit/miss counts).

use simtune_cache::{AccessKind, Cache, CacheConfig, ReplacementPolicy};

/// 4-way × 1-set × 64 B cache: every line conflicts, so the policy alone
/// decides who gets evicted.
fn one_set(policy: ReplacementPolicy) -> Cache {
    Cache::new(CacheConfig::new("t", 256, 1, 4, 64, policy).expect("valid config"))
}

/// Line base address for slot `i` (all map to set 0 of `one_set`).
fn line(i: u64) -> u64 {
    i * 64
}

/// Reads `line(i)` and reports whether it missed.
fn read(c: &mut Cache, i: u64) -> bool {
    !c.access(line(i), AccessKind::Read).hit
}

/// Returns which of the first `n` lines are currently resident.
fn resident(c: &Cache, n: u64) -> Vec<u64> {
    (0..n).filter(|&i| c.contains(line(i))).collect()
}

#[test]
fn lru_evicts_in_recency_order() {
    let mut c = one_set(ReplacementPolicy::Lru);
    for i in 0..4 {
        assert!(read(&mut c, i), "cold fill {i}");
    }
    // Recency order (oldest first) is now 0, 1, 2, 3. Touch 0 and 1 so
    // the order becomes 2, 3, 0, 1 and evictions must follow it.
    assert!(!read(&mut c, 0));
    assert!(!read(&mut c, 1));
    assert!(read(&mut c, 4), "conflict miss");
    assert_eq!(resident(&c, 5), vec![0, 1, 3, 4], "2 was LRU");
    assert!(read(&mut c, 5));
    assert_eq!(resident(&c, 6), vec![0, 1, 4, 5], "then 3");
    assert!(read(&mut c, 6));
    assert_eq!(resident(&c, 7), vec![1, 4, 5, 6], "then 0");
    assert!(read(&mut c, 7));
    assert_eq!(resident(&c, 8), vec![4, 5, 6, 7], "then 1");
}

#[test]
fn fifo_evicts_in_fill_order_ignoring_hits() {
    let mut c = one_set(ReplacementPolicy::Fifo);
    for i in 0..4 {
        read(&mut c, i);
    }
    // Hits must not refresh FIFO age: 0 stays the oldest fill.
    assert!(!read(&mut c, 0));
    assert!(!read(&mut c, 0));
    assert!(read(&mut c, 4));
    assert_eq!(
        resident(&c, 5),
        vec![1, 2, 3, 4],
        "0 filled first, goes first"
    );
    assert!(read(&mut c, 5));
    assert_eq!(resident(&c, 6), vec![2, 3, 4, 5], "then 1");
    // Re-reading 2 (a hit) still must not save it.
    assert!(!read(&mut c, 2));
    assert!(read(&mut c, 6));
    assert_eq!(resident(&c, 7), vec![3, 4, 5, 6], "then 2 despite the hit");
}

#[test]
fn tree_plru_protects_the_most_recent_line() {
    let mut c = one_set(ReplacementPolicy::TreePlru);
    for i in 0..4 {
        read(&mut c, i);
    }
    // After filling ways 0..3 the PLRU pointers select way 0; touching
    // line 0 flips the tree so the victim moves to the opposite
    // subtree — line 2 under standard tree-PLRU.
    assert!(!read(&mut c, 0));
    assert!(read(&mut c, 4));
    assert_eq!(resident(&c, 5), vec![0, 1, 3, 4], "2 evicted, 0 protected");
    // The fresh fill of 4 (into way 2) points the tree at way 1 next.
    assert!(read(&mut c, 5));
    assert_eq!(resident(&c, 6), vec![0, 3, 4, 5], "then 1");
}

#[test]
fn random_eviction_is_deterministic_across_runs() {
    // The Random policy draws from the cache's own xorshift stream, so
    // two caches fed the identical trace must evict identically.
    let trace: Vec<u64> = (0..64).map(|i| (i * 7) % 13).collect();
    let run = |mut c: Cache| -> (Vec<u64>, u64) {
        for &i in &trace {
            c.access(line(i), AccessKind::Read);
        }
        let s = c.stats();
        (resident(&c, 13), s.read_replacements)
    };
    let (res_a, evictions_a) = run(one_set(ReplacementPolicy::Random));
    let (res_b, evictions_b) = run(one_set(ReplacementPolicy::Random));
    assert_eq!(res_a, res_b, "same trace, same evictions");
    assert_eq!(evictions_a, evictions_b);
    assert_eq!(
        res_a.len(),
        4,
        "a 4-way set holds exactly 4 of 13 hot lines"
    );
    assert!(evictions_a > 0, "trace must overflow the set");
}

#[test]
fn policies_diverge_on_the_same_trace() {
    // Sanity: the scripted trace actually distinguishes the policies
    // (LRU keeps the re-touched line, FIFO does not).
    let mut lru = one_set(ReplacementPolicy::Lru);
    let mut fifo = one_set(ReplacementPolicy::Fifo);
    for c in [&mut lru, &mut fifo] {
        for i in 0..4 {
            read(c, i);
        }
        read(c, 0); // touch the oldest line
        read(c, 4); // overflow
    }
    assert!(lru.contains(line(0)), "LRU refreshed line 0");
    assert!(!fifo.contains(line(0)), "FIFO still evicts line 0");
}
