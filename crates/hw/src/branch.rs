/// A branch predictor built from a table of 2-bit saturating direction
/// counters indexed by branch PC — the classic bimodal predictor —
/// optionally extended with a branch target buffer (BTB) and a return
/// address stack (RAS) for the pipelined timing tier.
///
/// Loop back-edges predict "taken" after one iteration and mispredict
/// once at loop exit, so deeply nested short loops pay proportionally
/// more mispredict cycles — a real effect the schedule's loop structure
/// controls and the instruction-accurate statistics only partially
/// expose (through the branch-instruction ratio).
///
/// The BTB models the *target* side of prediction: a taken branch whose
/// target the fetch stage could not produce redirects the front end
/// exactly like a direction mispredict. The RAS predicts return targets
/// for call/return pairs; the bundled virtual ISA has no call/return
/// instructions yet, so the pipelined tier allocates the stack but never
/// exercises it — the push/pop interface is kept (and unit-tested) for
/// ISA extensions.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    counters: Vec<u8>,
    btb: Vec<BtbEntry>,
    ras: Vec<usize>,
    ras_depth: usize,
    mispredicts: u64,
    predictions: u64,
    btb_misses: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct BtbEntry {
    valid: bool,
    pc: usize,
    target: usize,
}

impl BranchPredictor {
    /// Creates a direction-only predictor with `entries` counters
    /// (rounded up to a power of two), initialized to weakly-not-taken.
    /// No BTB or RAS is modeled — [`BranchPredictor::observe`] judges
    /// direction alone.
    pub fn new(entries: usize) -> Self {
        Self::with_tables(entries, 0, 0)
    }

    /// Creates a predictor with `entries` direction counters, a BTB of
    /// `btb_entries` target slots (rounded up to a power of two; `0`
    /// disables target prediction) and a RAS of `ras_depth` slots.
    pub fn with_tables(entries: usize, btb_entries: usize, ras_depth: usize) -> Self {
        let n = entries.next_power_of_two().max(16);
        let btb_n = if btb_entries == 0 {
            0
        } else {
            btb_entries.next_power_of_two().max(16)
        };
        BranchPredictor {
            counters: vec![1; n], // weakly not-taken
            btb: vec![BtbEntry::default(); btb_n],
            ras: Vec::with_capacity(ras_depth),
            ras_depth,
            mispredicts: 0,
            predictions: 0,
            btb_misses: 0,
        }
    }

    /// Updates the direction counter for `pc` and returns the direction
    /// that was predicted *before* the update.
    fn direction(&mut self, pc: usize, taken: bool) -> bool {
        let idx = pc & (self.counters.len() - 1);
        let c = &mut self.counters[idx];
        let predicted_taken = *c >= 2;
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.predictions += 1;
        predicted_taken
    }

    /// Records the outcome of a branch at `pc`; returns true when the
    /// direction prediction was wrong. Does not consult the BTB.
    pub fn observe(&mut self, pc: usize, taken: bool) -> bool {
        let wrong = self.direction(pc, taken) != taken;
        if wrong {
            self.mispredicts += 1;
        }
        wrong
    }

    /// Records the outcome *and resolved target* of a branch at `pc`;
    /// returns true when the front end must be redirected — the
    /// direction was wrong, or the branch was correctly predicted taken
    /// but the BTB held no (or a stale) target for it. Taken branches
    /// always train the BTB.
    pub fn observe_with_target(&mut self, pc: usize, target: usize, taken: bool) -> bool {
        let predicted_taken = self.direction(pc, taken);
        let mut wrong = predicted_taken != taken;
        if !self.btb.is_empty() && taken {
            let idx = pc & (self.btb.len() - 1);
            let e = &mut self.btb[idx];
            let hit = e.valid && e.pc == pc && e.target == target;
            if predicted_taken && !hit {
                self.btb_misses += 1;
                wrong = true;
            }
            *e = BtbEntry {
                valid: true,
                pc,
                target,
            };
        }
        if wrong {
            self.mispredicts += 1;
        }
        wrong
    }

    /// Pushes a predicted return address (call side). A full stack
    /// drops its oldest entry, like a hardware circular RAS.
    pub fn ras_push(&mut self, return_pc: usize) {
        if self.ras_depth == 0 {
            return;
        }
        if self.ras.len() == self.ras_depth {
            self.ras.remove(0);
        }
        self.ras.push(return_pc);
    }

    /// Pops the predicted return address and compares it with the
    /// resolved one; returns true when the prediction was wrong (stale
    /// entry or empty stack).
    pub fn ras_pop(&mut self, actual_pc: usize) -> bool {
        match self.ras.pop() {
            Some(predicted) => predicted != actual_pc,
            None => true,
        }
    }

    /// Current RAS occupancy.
    pub fn ras_len(&self) -> usize {
        self.ras.len()
    }

    /// Total mispredictions so far (direction and BTB-redirect).
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Total predictions so far.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Taken branches whose target the BTB could not produce.
    pub fn btb_misses(&self) -> u64 {
        self.btb_misses
    }

    /// Mispredicts / predictions (0 when nothing predicted).
    pub fn mispredict_ratio(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_branch_mispredicts_at_entry_and_exit_only() {
        let mut p = BranchPredictor::new(64);
        // A 100-iteration loop back-edge: taken 99 times, then not taken.
        let mut wrong = 0;
        for _ in 0..99 {
            if p.observe(7, true) {
                wrong += 1;
            }
        }
        if p.observe(7, false) {
            wrong += 1;
        }
        // Warm-up (1-2) + exit (1).
        assert!(wrong <= 3, "bimodal should track a loop: {wrong} wrong");
        assert!(p.mispredict_ratio() < 0.05);
    }

    #[test]
    fn alternating_pattern_defeats_bimodal() {
        let mut p = BranchPredictor::new(64);
        for i in 0..100 {
            p.observe(3, i % 2 == 0);
        }
        // Bimodal mispredicts roughly half of an alternating stream.
        assert!(p.mispredict_ratio() > 0.3);
    }

    #[test]
    fn distinct_pcs_use_distinct_counters() {
        let mut p = BranchPredictor::new(64);
        for _ in 0..50 {
            p.observe(1, true);
            p.observe(2, false);
        }
        // Both stabilize: very few mispredicts after warm-up.
        assert!(p.mispredicts() <= 4);
        assert_eq!(p.predictions(), 100);
    }

    #[test]
    fn cold_btb_redirects_the_first_predicted_taken_branch() {
        let mut p = BranchPredictor::with_tables(64, 16, 0);
        // Warm the direction counter to "taken": first two observations
        // are direction mispredicts, no BTB penalty (not predicted taken).
        assert!(p.observe_with_target(9, 42, true));
        assert_eq!(p.btb_misses(), 0, "not-taken prediction skips the BTB");
        p.observe_with_target(9, 42, true);
        // Direction now predicts taken and the BTB was trained by the
        // earlier taken outcomes: a steady stream is fully predicted.
        for _ in 0..20 {
            assert!(!p.observe_with_target(9, 42, true));
        }
        assert_eq!(p.btb_misses(), 0);
    }

    #[test]
    fn btb_target_change_counts_as_a_redirect() {
        let mut p = BranchPredictor::with_tables(64, 16, 0);
        for _ in 0..4 {
            p.observe_with_target(5, 100, true);
        }
        let before = p.mispredicts();
        // Same pc, correctly predicted taken, but a different resolved
        // target: the stale BTB entry cannot steer the fetch stage.
        assert!(p.observe_with_target(5, 200, true));
        assert_eq!(p.btb_misses(), 1);
        assert_eq!(p.mispredicts(), before + 1);
        // The BTB retrained on the new target.
        assert!(!p.observe_with_target(5, 200, true));
    }

    #[test]
    fn without_a_btb_observe_with_target_is_direction_only() {
        let mut a = BranchPredictor::new(64);
        let mut b = BranchPredictor::new(64);
        for i in 0..50 {
            let taken = i % 3 != 0;
            assert_eq!(
                a.observe(11, taken),
                b.observe_with_target(11, 7, taken),
                "iteration {i}"
            );
        }
        assert_eq!(a.mispredicts(), b.mispredicts());
        assert_eq!(b.btb_misses(), 0);
    }

    #[test]
    fn ras_matches_calls_to_returns_and_overflows_oldest_first() {
        let mut p = BranchPredictor::with_tables(16, 0, 2);
        assert!(p.ras_pop(10), "empty stack cannot predict");
        p.ras_push(10);
        p.ras_push(20);
        assert!(!p.ras_pop(20));
        assert!(!p.ras_pop(10));
        // Depth 2: the third push evicts the oldest.
        p.ras_push(1);
        p.ras_push(2);
        p.ras_push(3);
        assert_eq!(p.ras_len(), 2);
        assert!(!p.ras_pop(3));
        assert!(!p.ras_pop(2));
        assert!(p.ras_pop(1), "evicted entry is gone");
    }
}
