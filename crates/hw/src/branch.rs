/// A table of 2-bit saturating counters indexed by branch PC — the
/// classic bimodal direction predictor used by the timing models.
///
/// Loop back-edges predict "taken" after one iteration and mispredict
/// once at loop exit, so deeply nested short loops pay proportionally
/// more mispredict cycles — a real effect the schedule's loop structure
/// controls and the instruction-accurate statistics only partially
/// expose (through the branch-instruction ratio).
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    counters: Vec<u8>,
    mispredicts: u64,
    predictions: u64,
}

impl BranchPredictor {
    /// Creates a predictor with `entries` counters (rounded up to a power
    /// of two), initialized to weakly-not-taken.
    pub fn new(entries: usize) -> Self {
        let n = entries.next_power_of_two().max(16);
        BranchPredictor {
            counters: vec![1; n], // weakly not-taken
            mispredicts: 0,
            predictions: 0,
        }
    }

    /// Records the outcome of a branch at `pc`; returns true when the
    /// prediction was wrong.
    pub fn observe(&mut self, pc: usize, taken: bool) -> bool {
        let idx = pc & (self.counters.len() - 1);
        let c = &mut self.counters[idx];
        let predicted_taken = *c >= 2;
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.predictions += 1;
        let wrong = predicted_taken != taken;
        if wrong {
            self.mispredicts += 1;
        }
        wrong
    }

    /// Total mispredictions so far.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Total predictions so far.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Mispredicts / predictions (0 when nothing predicted).
    pub fn mispredict_ratio(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_branch_mispredicts_at_entry_and_exit_only() {
        let mut p = BranchPredictor::new(64);
        // A 100-iteration loop back-edge: taken 99 times, then not taken.
        let mut wrong = 0;
        for _ in 0..99 {
            if p.observe(7, true) {
                wrong += 1;
            }
        }
        if p.observe(7, false) {
            wrong += 1;
        }
        // Warm-up (1-2) + exit (1).
        assert!(wrong <= 3, "bimodal should track a loop: {wrong} wrong");
        assert!(p.mispredict_ratio() < 0.05);
    }

    #[test]
    fn alternating_pattern_defeats_bimodal() {
        let mut p = BranchPredictor::new(64);
        for i in 0..100 {
            p.observe(3, i % 2 == 0);
        }
        // Bimodal mispredicts roughly half of an alternating stream.
        assert!(p.mispredict_ratio() > 0.3);
    }

    #[test]
    fn distinct_pcs_use_distinct_counters() {
        let mut p = BranchPredictor::new(64);
        for _ in 0..50 {
            p.observe(1, true);
            p.observe(2, false);
        }
        // Both stabilize: very few mispredicts after warm-up.
        assert!(p.mispredicts() <= 4);
        assert_eq!(p.predictions(), 100);
    }
}
