//! Target-hardware substitute: timing-accurate CPU models plus a
//! measurement harness.
//!
//! The paper measures reference run times `t_ref` on three physical
//! machines (Ryzen 7 5800X, Cortex-A72, SiFive U74-MC) with `N_exe = 15`
//! repetitions, 1 s cooldowns, cache flushes and median extraction
//! (Section IV). This crate replaces those machines:
//!
//! * [`TimingModel`] re-executes a program on its own cache hierarchy
//!   while accumulating cycles from an issue-width pipeline model,
//!   partially-overlapped miss latencies, a PC-indexed stride prefetcher
//!   and a 2-bit branch predictor — mechanisms deliberately *invisible*
//!   to the instruction-accurate statistics the predictor sees, so that
//!   the prediction problem keeps its structure (scores correlate with,
//!   but do not equal, runtime).
//! * [`measure`] wraps the deterministic base time with a measurement
//!   noise model (load jitter, absolute timer floor, outlier spikes,
//!   thermal throttling with cooldown recovery) and reports the median of
//!   `N_exe` noisy repetitions, exactly like the paper's benchmarking
//!   protocol.
//!
//! # Example
//!
//! ```
//! use simtune_hw::{measure, MeasureConfig, TargetSpec};
//! use simtune_isa::{Executable, Gpr, Inst, ProgramBuilder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = TargetSpec::riscv_u74();
//! let mut b = ProgramBuilder::new();
//! b.push(Inst::Li { rd: Gpr(1), imm: 1 });
//! b.push(Inst::Halt);
//! let exe = Executable::new("tiny", b.build()?, spec.isa.clone());
//! let m = measure(&exe, &spec, &MeasureConfig::default(), 42)?;
//! assert!(m.t_ref > 0.0);
//! assert_eq!(m.samples.len(), 15);
//! # Ok(())
//! # }
//! ```

mod branch;
mod measure;
mod noise;
mod pipeline;
mod prefetch;
mod targets;
mod timing;

pub use branch::BranchPredictor;
pub use measure::{
    measure, measure_base_seconds, native_benchmark_seconds, MeasureConfig, Measurement,
};
pub use noise::{NoiseModel, NoiseParams, ThermalState};
pub use pipeline::PipelineModel;
pub use prefetch::StridePrefetcher;
pub use targets::{TargetSpec, TimingParams};
pub use timing::{CycleBreakdown, TimingModel};
