use crate::NoiseParams;
use simtune_cache::HierarchyConfig;
use simtune_isa::TargetIsa;

/// Microarchitectural cost parameters of one timing model.
///
/// These numbers are calibrated to the published characteristics of the
/// paper's three platforms (issue widths, load-to-use and DRAM latencies,
/// pipeline depths), not fitted to its results; the reproduction only
/// needs the relative cost structure to be faithful.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingParams {
    /// Sustained issue width (micro-ops per cycle the pipeline retires).
    pub issue_width: f64,
    /// Issue slots consumed by one integer ALU op.
    pub int_cost: f64,
    /// Issue slots per scalar FP op (FMA counts once).
    pub fp_cost: f64,
    /// Issue slots per vector op.
    pub vec_cost: f64,
    /// Issue slots per load.
    pub load_cost: f64,
    /// Issue slots per store.
    pub store_cost: f64,
    /// Issue slots per branch.
    pub branch_cost: f64,
    /// Extra cycles for an L2 hit (L1 hits are pipelined away).
    pub l2_cycles: f64,
    /// Extra cycles for an L3 hit (x86 only).
    pub l3_cycles: f64,
    /// Extra cycles for a DRAM access.
    pub mem_cycles: f64,
    /// Fraction of miss latency hidden by out-of-order overlap / MLP.
    pub miss_overlap: f64,
    /// Cycles lost per mispredicted branch.
    pub mispredict_penalty: f64,
    /// Stride-prefetcher table entries (0 disables prefetching).
    pub prefetch_streams: usize,
    /// Lines fetched ahead once a stream is confirmed.
    pub prefetch_degree: usize,
}

/// Full description of one emulated target machine: ISA resources, cache
/// geometry (Table I), clock frequency (Section IV) and the timing/noise
/// models.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetSpec {
    /// ISA-visible resources (register counts, vector lanes).
    pub isa: TargetIsa,
    /// Cache hierarchy, identical to the geometry the instruction-accurate
    /// simulator replicates.
    pub hierarchy: HierarchyConfig,
    /// Core clock in Hz.
    pub freq_hz: f64,
    /// Pipeline/memory cost model.
    pub timing: TimingParams,
    /// Measurement noise model.
    pub noise: NoiseParams,
}

impl TargetSpec {
    /// AMD Ryzen 7 5800X @ 2.2 GHz (the paper's x86 platform): wide
    /// out-of-order core, aggressive prefetching, large L3 — and the
    /// noisiest measurements because runtimes are shortest.
    pub fn x86_ryzen_5800x() -> Self {
        TargetSpec {
            isa: TargetIsa::x86_ryzen_5800x(),
            hierarchy: HierarchyConfig::x86_ryzen_5800x(),
            freq_hz: 2.2e9,
            timing: TimingParams {
                issue_width: 4.0,
                int_cost: 0.6,
                fp_cost: 0.7,
                vec_cost: 1.0,
                load_cost: 0.7,
                store_cost: 1.0,
                branch_cost: 0.6,
                l2_cycles: 12.0,
                l3_cycles: 42.0,
                mem_cycles: 190.0,
                miss_overlap: 0.65,
                mispredict_penalty: 13.0,
                prefetch_streams: 16,
                prefetch_degree: 2,
            },
            noise: NoiseParams::x86_desktop(),
        }
    }

    /// Raspberry Pi 4 / Cortex-A72 @ 1.5 GHz: moderately wide out-of-order
    /// core, modest prefetcher, thermally constrained board.
    pub fn arm_cortex_a72() -> Self {
        TargetSpec {
            isa: TargetIsa::arm_cortex_a72(),
            hierarchy: HierarchyConfig::arm_cortex_a72(),
            freq_hz: 1.5e9,
            timing: TimingParams {
                issue_width: 2.2,
                int_cost: 1.0,
                fp_cost: 1.0,
                vec_cost: 1.2,
                load_cost: 1.0,
                store_cost: 1.0,
                branch_cost: 0.8,
                l2_cycles: 19.0,
                l3_cycles: 0.0,
                mem_cycles: 200.0,
                miss_overlap: 0.35,
                mispredict_penalty: 12.0,
                prefetch_streams: 8,
                prefetch_degree: 1,
            },
            noise: NoiseParams::arm_sbc(),
        }
    }

    /// SiFive U74-MC @ 1.2 GHz: dual-issue in-order core, no vector unit,
    /// minimal prefetching, misses barely overlapped.
    pub fn riscv_u74() -> Self {
        TargetSpec {
            isa: TargetIsa::riscv_u74(),
            hierarchy: HierarchyConfig::riscv_u74(),
            freq_hz: 1.2e9,
            timing: TimingParams {
                issue_width: 1.7,
                int_cost: 1.0,
                fp_cost: 1.3,
                vec_cost: 1.3,
                load_cost: 1.0,
                store_cost: 1.0,
                branch_cost: 1.0,
                l2_cycles: 21.0,
                l3_cycles: 0.0,
                mem_cycles: 168.0,
                miss_overlap: 0.05,
                mispredict_penalty: 5.0,
                prefetch_streams: 4,
                prefetch_degree: 1,
            },
            noise: NoiseParams::riscv_board(),
        }
    }

    /// The three paper targets in table order.
    pub fn paper_targets() -> Vec<TargetSpec> {
        vec![
            Self::x86_ryzen_5800x(),
            Self::arm_cortex_a72(),
            Self::riscv_u74(),
        ]
    }

    /// Looks a target up by its short label ("x86", "arm", "riscv").
    pub fn by_name(name: &str) -> Option<TargetSpec> {
        match name {
            "x86" => Some(Self::x86_ryzen_5800x()),
            "arm" => Some(Self::arm_cortex_a72()),
            "riscv" => Some(Self::riscv_u74()),
            _ => None,
        }
    }

    /// Short label of the target ("x86", "arm", "riscv").
    pub fn name(&self) -> &'static str {
        self.isa.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_frequencies() {
        assert_eq!(TargetSpec::x86_ryzen_5800x().freq_hz, 2.2e9);
        assert_eq!(TargetSpec::arm_cortex_a72().freq_hz, 1.5e9);
        assert_eq!(TargetSpec::riscv_u74().freq_hz, 1.2e9);
    }

    #[test]
    fn hierarchy_matches_isa_name() {
        for spec in TargetSpec::paper_targets() {
            assert_eq!(spec.isa.name, spec.hierarchy.name);
            assert_eq!(TargetSpec::by_name(spec.name()).unwrap(), spec);
        }
    }

    #[test]
    fn ooo_targets_overlap_more_than_in_order() {
        let x86 = TargetSpec::x86_ryzen_5800x();
        let riscv = TargetSpec::riscv_u74();
        assert!(x86.timing.miss_overlap > riscv.timing.miss_overlap);
        assert!(x86.timing.issue_width > riscv.timing.issue_width);
    }
}
