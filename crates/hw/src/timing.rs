use crate::{BranchPredictor, StridePrefetcher, TargetSpec};
use simtune_cache::{CacheHierarchy, ServicedBy};
use simtune_isa::{ExecHook, Inst, InstMix};

/// Cycle accounting of one timing run, split by source.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CycleBreakdown {
    /// Cycles from issue-slot occupancy (`slots / issue_width`).
    pub pipeline: f64,
    /// Cycles from partially-overlapped cache/memory miss latencies.
    pub memory: f64,
    /// Cycles from branch mispredictions.
    pub control: f64,
}

impl CycleBreakdown {
    /// Total cycles.
    pub fn total(&self) -> f64 {
        self.pipeline + self.memory + self.control
    }
}

/// The timing-accurate execution observer: re-runs a program through
/// [`simtune_isa::AtomicCpu::run_with_hook`] and prices every event.
///
/// Unlike the instruction-accurate path, the timing model owns a stride
/// prefetcher (which mutates its private cache hierarchy) and a branch
/// predictor — the sources of systematic mismatch between simulator
/// statistics and target runtime that the paper's score predictors must
/// learn around.
#[derive(Debug)]
pub struct TimingModel {
    spec: TargetSpec,
    slots: f64,
    memory_cycles: f64,
    control_cycles: f64,
    prefetcher: StridePrefetcher,
    predictor: BranchPredictor,
    cur_pc: usize,
    retired: InstMix,
}

impl TimingModel {
    /// Creates a fresh timing model for `spec`.
    pub fn new(spec: &TargetSpec) -> Self {
        let line = spec.hierarchy.line_bytes();
        TimingModel {
            spec: spec.clone(),
            slots: 0.0,
            memory_cycles: 0.0,
            control_cycles: 0.0,
            prefetcher: StridePrefetcher::new(
                spec.timing.prefetch_streams,
                spec.timing.prefetch_degree,
                line,
            ),
            predictor: BranchPredictor::new(1024),
            cur_pc: 0,
            retired: InstMix::default(),
        }
    }

    /// Cycle breakdown accumulated so far.
    pub fn breakdown(&self) -> CycleBreakdown {
        CycleBreakdown {
            pipeline: self.slots / self.spec.timing.issue_width,
            memory: self.memory_cycles,
            control: self.control_cycles,
        }
    }

    /// Total cycles accumulated so far.
    pub fn cycles(&self) -> f64 {
        self.breakdown().total()
    }

    /// Seconds at the target's clock frequency.
    pub fn seconds(&self) -> f64 {
        self.cycles() / self.spec.freq_hz
    }

    /// Prefetch requests issued by the model's stride prefetcher.
    pub fn prefetches_issued(&self) -> u64 {
        self.prefetcher.issued()
    }

    /// Branch mispredictions observed.
    pub fn mispredicts(&self) -> u64 {
        self.predictor.mispredicts()
    }
}

impl ExecHook for TimingModel {
    fn on_fetch(&mut self, pc: usize, serviced: ServicedBy) {
        self.cur_pc = pc;
        // I-cache misses stall the front end; overlap does not apply
        // (in-order fetch).
        let t = &self.spec.timing;
        self.memory_cycles += match serviced {
            ServicedBy::L1i | ServicedBy::L1d => 0.0,
            ServicedBy::L2 => t.l2_cycles * 0.5,
            ServicedBy::L3 => t.l3_cycles * 0.5,
            ServicedBy::Memory => t.mem_cycles * 0.5,
        };
    }

    fn on_retire(&mut self, inst: &Inst) {
        let t = &self.spec.timing;
        let m = &mut self.retired;
        self.slots += if inst.is_load() {
            m.loads += 1;
            t.load_cost
        } else if inst.is_store() {
            m.stores += 1;
            t.store_cost
        } else if inst.is_branch() {
            m.branches += 1;
            t.branch_cost
        } else {
            match inst {
                Inst::Fadd { .. }
                | Inst::Fsub { .. }
                | Inst::Fmul { .. }
                | Inst::Fdiv { .. }
                | Inst::Fmadd { .. }
                | Inst::Fmax { .. }
                | Inst::Fli { .. } => {
                    m.fp_alu += 1;
                    t.fp_cost
                }
                Inst::Vload { .. } | Inst::Vstore { .. } => unreachable!("handled as load/store"),
                Inst::Vbcast { .. }
                | Inst::Vsplat { .. }
                | Inst::Vfadd { .. }
                | Inst::Vfmul { .. }
                | Inst::Vfma { .. }
                | Inst::Vfmax { .. }
                | Inst::Vredsum { .. }
                | Inst::Vinsert { .. }
                | Inst::Vextract { .. } => {
                    m.vec_alu += 1;
                    t.vec_cost
                }
                _ => {
                    m.int_alu += 1;
                    t.int_cost
                }
            }
        };
    }

    fn on_data_access(
        &mut self,
        line_addr: u64,
        is_store: bool,
        serviced: ServicedBy,
        hier: &mut CacheHierarchy,
    ) {
        let t = &self.spec.timing;
        let raw = match serviced {
            ServicedBy::L1d | ServicedBy::L1i => 0.0,
            ServicedBy::L2 => t.l2_cycles,
            ServicedBy::L3 => t.l3_cycles,
            ServicedBy::Memory => t.mem_cycles,
        };
        // Stores retire through the store buffer: more latency is hidden.
        let overlap = if is_store {
            (t.miss_overlap + 0.3).min(0.95)
        } else {
            t.miss_overlap
        };
        self.memory_cycles += raw * (1.0 - overlap);
        self.prefetcher.observe(self.cur_pc, line_addr, hier);
    }

    fn on_branch(&mut self, pc: usize, _target: usize, taken: bool) {
        if self.predictor.observe(pc, taken) {
            self.control_cycles += self.spec.timing.mispredict_penalty;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtune_isa::{AtomicCpu, Gpr, Inst, Memory, ProgramBuilder, RunLimits};

    /// Streaming-sum program over `n` f32 elements starting at `base`.
    fn streaming_program(n: i64, stride: i64) -> simtune_isa::Program {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Li {
            rd: Gpr(1),
            imm: 0x100_0000,
        });
        b.push(Inst::Li { rd: Gpr(2), imm: 0 }); // i
        b.push(Inst::Li { rd: Gpr(3), imm: n });
        let top = b.bind_new_label();
        b.push(Inst::Flw {
            fd: simtune_isa::Fpr(1),
            rs: Gpr(1),
            imm: 0,
        });
        b.push(Inst::Addi {
            rd: Gpr(1),
            rs: Gpr(1),
            imm: stride,
        });
        b.push(Inst::Addi {
            rd: Gpr(2),
            rs: Gpr(2),
            imm: 1,
        });
        b.branch_lt(Gpr(2), Gpr(3), top);
        b.push(Inst::Halt);
        b.build().unwrap()
    }

    fn run_timing(spec: &TargetSpec, prog: &simtune_isa::Program) -> TimingModel {
        let mut cpu = AtomicCpu::new(&spec.isa);
        let mut mem = Memory::new();
        let mut hier = simtune_cache::CacheHierarchy::new(spec.hierarchy.clone());
        let mut model = TimingModel::new(spec);
        cpu.run_with_hook(prog, &mut mem, &mut hier, RunLimits::default(), &mut model)
            .unwrap();
        model
    }

    #[test]
    fn cycles_are_positive_and_decomposed() {
        let spec = TargetSpec::riscv_u74();
        let model = run_timing(&spec, &streaming_program(1000, 4));
        let b = model.breakdown();
        assert!(b.pipeline > 0.0);
        assert!(b.memory > 0.0, "cold misses must cost memory cycles");
        assert!((b.total() - model.cycles()).abs() < 1e-9);
        assert!(model.seconds() > 0.0);
    }

    #[test]
    fn prefetcher_reduces_memory_cycles_for_streams() {
        // Same program, one target with and one without prefetching.
        let spec_pf = TargetSpec::x86_ryzen_5800x();
        let mut spec_nopf = spec_pf.clone();
        spec_nopf.timing.prefetch_streams = 0;
        let prog = streaming_program(4000, 4);
        let with_pf = run_timing(&spec_pf, &prog);
        let without = run_timing(&spec_nopf, &prog);
        assert!(with_pf.prefetches_issued() > 0);
        assert!(
            with_pf.breakdown().memory < without.breakdown().memory * 0.7,
            "prefetching must hide a chunk of miss latency: {} vs {}",
            with_pf.breakdown().memory,
            without.breakdown().memory
        );
    }

    #[test]
    fn in_order_core_pays_more_per_miss() {
        // Same line-per-iteration stream, prefetchers disabled on both
        // targets: the miss counts are identical, so the paid memory
        // cycles compare the out-of-order overlap directly. The U74
        // (overlap 0.05) pays far more of the raw latency than the
        // Ryzen-like core (overlap 0.65).
        let prog = streaming_program(2000, 64);
        let mut x86 = TargetSpec::x86_ryzen_5800x();
        x86.timing.prefetch_streams = 0;
        let mut riscv = TargetSpec::riscv_u74();
        riscv.timing.prefetch_streams = 0;
        let mx = run_timing(&x86, &prog);
        let mr = run_timing(&riscv, &prog);
        assert!(
            mr.breakdown().memory > mx.breakdown().memory * 1.5,
            "in-order core must pay more miss latency: {} vs {}",
            mr.breakdown().memory,
            mx.breakdown().memory
        );
    }

    #[test]
    fn loop_branches_cost_little_after_warmup() {
        let spec = TargetSpec::arm_cortex_a72();
        let model = run_timing(&spec, &streaming_program(1000, 4));
        // 1000-iteration loop: a handful of mispredicts at most.
        assert!(model.mispredicts() < 5);
    }

    #[test]
    fn faster_clock_means_fewer_seconds_for_same_cycles() {
        let prog = streaming_program(500, 4);
        let x86 = run_timing(&TargetSpec::x86_ryzen_5800x(), &prog);
        let riscv = run_timing(&TargetSpec::riscv_u74(), &prog);
        // Same instruction stream: the wide 2.2 GHz core is much faster.
        assert!(x86.seconds() < riscv.seconds());
    }
}
