use rand::Rng;

/// Parameters of one target's measurement-noise model.
///
/// The paper lists the classic sources of benchmarking non-determinism —
/// system load, cache collisions, thermal throttling, frequency scaling —
/// as the reason each implementation is executed `N_exe` times with
/// cooldowns (Sections I and IV). This model reproduces their aggregate
/// statistical effect:
///
/// * multiplicative *load jitter* (OS scheduling, SMIs),
/// * an additive *timer floor* (fixed-cost perturbations that loom large
///   for short runtimes — the reason the paper's x86 references are the
///   noisiest),
/// * occasional *outlier spikes* (the samples benchmark harnesses drop),
/// * a *thermal state* that heats while running and cools during
///   cooldown, slowing subsequent repetitions when cooldowns are skipped.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseParams {
    /// Standard deviation of the multiplicative jitter (relative).
    pub jitter_rel: f64,
    /// Standard deviation of the additive jitter in seconds.
    pub floor_s: f64,
    /// Probability that a repetition catches an outlier spike.
    pub outlier_prob: f64,
    /// Maximum relative magnitude of an outlier spike.
    pub outlier_max: f64,
    /// Thermal heating rate (state units per second of execution).
    pub heat_per_s: f64,
    /// Thermal cooling rate (state units per second of cooldown).
    pub cool_per_s: f64,
    /// Relative slowdown at full thermal saturation.
    pub max_thermal_slowdown: f64,
}

impl NoiseParams {
    /// Desktop Ryzen: tiny relative jitter but a timer floor that
    /// dominates sub-millisecond kernels; good cooling.
    pub fn x86_desktop() -> Self {
        NoiseParams {
            jitter_rel: 0.008,
            floor_s: 60e-6,
            outlier_prob: 0.06,
            outlier_max: 0.30,
            heat_per_s: 0.02,
            cool_per_s: 0.5,
            max_thermal_slowdown: 0.02,
        }
    }

    /// Raspberry Pi 4: moderate jitter and pronounced thermal throttling
    /// (passively cooled SBC).
    pub fn arm_sbc() -> Self {
        NoiseParams {
            jitter_rel: 0.012,
            floor_s: 30e-6,
            outlier_prob: 0.04,
            outlier_max: 0.20,
            heat_per_s: 0.25,
            cool_per_s: 0.35,
            max_thermal_slowdown: 0.12,
        }
    }

    /// SiFive board: modest jitter, mild thermals, slow clock.
    pub fn riscv_board() -> Self {
        NoiseParams {
            jitter_rel: 0.010,
            floor_s: 30e-6,
            outlier_prob: 0.04,
            outlier_max: 0.20,
            heat_per_s: 0.12,
            cool_per_s: 0.40,
            max_thermal_slowdown: 0.06,
        }
    }

    /// A noiseless configuration for deterministic tests.
    pub fn none() -> Self {
        NoiseParams {
            jitter_rel: 0.0,
            floor_s: 0.0,
            outlier_prob: 0.0,
            outlier_max: 0.0,
            heat_per_s: 0.0,
            cool_per_s: 1.0,
            max_thermal_slowdown: 0.0,
        }
    }
}

/// Thermal state of the emulated board in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ThermalState(f64);

impl ThermalState {
    /// Cold board.
    pub fn cold() -> Self {
        ThermalState(0.0)
    }

    /// Current state in `[0, 1]`.
    pub fn level(&self) -> f64 {
        self.0
    }

    /// Heats by `seconds` of execution under `params`.
    pub fn heat(&mut self, seconds: f64, params: &NoiseParams) {
        self.0 = (self.0 + seconds * params.heat_per_s).min(1.0);
    }

    /// Cools by `seconds` of idle time under `params`.
    pub fn cool(&mut self, seconds: f64, params: &NoiseParams) {
        self.0 = (self.0 - seconds * params.cool_per_s).max(0.0);
    }
}

/// Stateful noise generator for one measurement session.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    params: NoiseParams,
    thermal: ThermalState,
}

impl NoiseModel {
    /// Creates a model starting from a cold board.
    pub fn new(params: NoiseParams) -> Self {
        NoiseModel {
            params,
            thermal: ThermalState::cold(),
        }
    }

    /// The model's parameters.
    pub fn params(&self) -> &NoiseParams {
        &self.params
    }

    /// Current thermal state.
    pub fn thermal(&self) -> ThermalState {
        self.thermal
    }

    /// Produces one noisy sample of a run whose true duration is
    /// `base_seconds`, advancing the thermal state.
    pub fn sample<R: Rng>(&mut self, base_seconds: f64, rng: &mut R) -> f64 {
        let p = &self.params;
        let thermal_factor = 1.0 + self.thermal.level() * p.max_thermal_slowdown;
        let jitter = 1.0 + p.jitter_rel * gaussian(rng);
        let floor = p.floor_s * gaussian(rng).abs();
        let mut t = base_seconds * thermal_factor * jitter.max(0.5) + floor;
        if p.outlier_prob > 0.0 && rng.gen_bool(p.outlier_prob) {
            t *= 1.0 + rng.gen_range(0.0..p.outlier_max);
        }
        self.thermal.heat(base_seconds, p);
        t.max(0.0)
    }

    /// Advances the thermal state through an idle cooldown.
    pub fn cooldown(&mut self, seconds: f64) {
        let params = self.params.clone();
        self.thermal.cool(seconds, &params);
    }
}

/// Standard normal draw via Box–Muller.
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_model_is_identity() {
        let mut m = NoiseModel::new(NoiseParams::none());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let s = m.sample(0.5, &mut rng);
            assert!((s - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_are_centered_near_base() {
        let mut m = NoiseModel::new(NoiseParams::x86_desktop());
        let mut rng = StdRng::seed_from_u64(2);
        let base = 0.01;
        let samples: Vec<f64> = (0..500).map(|_| m.sample(base, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(
            (mean - base).abs() / base < 0.1,
            "mean {mean} vs base {base}"
        );
        // All samples positive and none absurdly large.
        assert!(samples.iter().all(|&s| s > 0.0 && s < base * 2.0));
    }

    #[test]
    fn floor_noise_dominates_short_runs() {
        let p = NoiseParams::x86_desktop();
        let mut m = NoiseModel::new(p);
        let mut rng = StdRng::seed_from_u64(3);
        let short = 100e-6;
        let long = 0.1;
        let rel_spread = |base: f64, m: &mut NoiseModel, rng: &mut StdRng| {
            let s: Vec<f64> = (0..300).map(|_| m.sample(base, rng)).collect();
            let mean = s.iter().sum::<f64>() / s.len() as f64;
            let var = s.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / s.len() as f64;
            var.sqrt() / mean
        };
        let short_spread = rel_spread(short, &mut m, &mut rng);
        let mut m2 = NoiseModel::new(NoiseParams::x86_desktop());
        let long_spread = rel_spread(long, &mut m2, &mut rng);
        assert!(
            short_spread > long_spread * 2.0,
            "short runs must be relatively noisier: {short_spread} vs {long_spread}"
        );
    }

    #[test]
    fn thermal_state_heats_and_cools() {
        let p = NoiseParams::arm_sbc();
        let mut t = ThermalState::cold();
        t.heat(2.0, &p);
        assert!(t.level() > 0.0);
        let peak = t.level();
        t.cool(1.0, &p);
        assert!(t.level() < peak);
        t.cool(100.0, &p);
        assert_eq!(t.level(), 0.0);
        t.heat(1e9, &p);
        assert_eq!(t.level(), 1.0);
    }

    #[test]
    fn sustained_load_without_cooldown_slows_samples() {
        let p = NoiseParams {
            jitter_rel: 0.0,
            floor_s: 0.0,
            outlier_prob: 0.0,
            ..NoiseParams::arm_sbc()
        };
        let mut m = NoiseModel::new(p);
        let mut rng = StdRng::seed_from_u64(4);
        let first = m.sample(1.0, &mut rng);
        for _ in 0..20 {
            m.sample(1.0, &mut rng);
        }
        let later = m.sample(1.0, &mut rng);
        assert!(later > first, "throttling must slow later samples");
    }
}
