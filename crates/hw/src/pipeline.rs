use crate::{BranchPredictor, CycleBreakdown, StridePrefetcher, TargetSpec};
use simtune_cache::{CacheHierarchy, ServicedBy};
use simtune_isa::{MixClass, TimingHook, UopEvent, TIMING_REGS};

/// A 5-stage in-order pipeline timing model (IF/ID/EX/MEM/WB) driven by
/// the µop stream of a [`TimingHook`].
///
/// Where [`TimingModel`](crate::TimingModel) prices an aggregate
/// instruction mix in floating point, `PipelineModel` advances an
/// integer cycle clock one retirement at a time against a register
/// scoreboard:
///
/// * **RAW hazards / load-use bubbles** — every µop waits until its
///   source registers' results are ready; producers publish a
///   class-dependent result latency (loads one extra cycle, FP and
///   vector ops two), so a dependent chain stretches while independent
///   work hides the same latencies.
/// * **Front-end stalls** — instruction-fetch misses stall IF for half
///   the raw miss latency (sequential fetch overlaps the rest).
/// * **Memory stalls** — data-side misses charge the raw level latency
///   scaled by the target's miss-overlap factor (stores hide more,
///   retiring through the store buffer), buffered in MEM and paid when
///   the owning µop retires.
/// * **Control flushes** — branches resolve in EX against a
///   [`BranchPredictor`] with BTB and RAS; any front-end redirect
///   (wrong direction *or* missing target) costs the target's
///   mispredict penalty.
/// * **Prefetch** — a [`StridePrefetcher`] observes the demand stream
///   and fills the *shared* simulation hierarchy, so the pipelined
///   tier's cache statistics legitimately differ from the
///   instruction-accurate tier's.
///
/// All accounting is integral (`u64`), which makes cycle counts exactly
/// reproducible across replay engines and trial-parallelism degrees; by
/// construction `cycles() == retired + raw + memory + control ≥`
/// instruction count.
#[derive(Debug, Clone)]
pub struct PipelineModel {
    clock: u64,
    ready: [u64; TIMING_REGS],
    pending_fetch: u64,
    pending_mem: u64,
    branch_flush: bool,
    cur_pc: usize,
    retired: u64,
    raw_stalls: u64,
    memory_stalls: u64,
    control_stalls: u64,
    // Per-level stall tables, indexed by `level_idx` (L1, L2, L3, DRAM).
    fetch_stall: [u64; 4],
    load_stall: [u64; 4],
    store_stall: [u64; 4],
    mispredict_penalty: u64,
    freq_hz: f64,
    predictor: BranchPredictor,
    prefetcher: StridePrefetcher,
}

fn level_idx(serviced: ServicedBy) -> usize {
    match serviced {
        ServicedBy::L1i | ServicedBy::L1d => 0,
        ServicedBy::L2 => 1,
        ServicedBy::L3 => 2,
        ServicedBy::Memory => 3,
    }
}

impl PipelineModel {
    /// Creates a fresh pipeline for `spec` with a BTB of `btb_entries`
    /// slots and a RAS of `ras_depth` slots (the direction table is
    /// fixed at 1024 counters, matching [`TimingModel`](crate::TimingModel)).
    pub fn new(spec: &TargetSpec, btb_entries: usize, ras_depth: usize) -> Self {
        let t = &spec.timing;
        let raw = [0.0, t.l2_cycles, t.l3_cycles, t.mem_cycles];
        let store_overlap = (t.miss_overlap + 0.3).min(0.95);
        let mut fetch_stall = [0u64; 4];
        let mut load_stall = [0u64; 4];
        let mut store_stall = [0u64; 4];
        for (i, &r) in raw.iter().enumerate() {
            // In-order fetch overlaps half a front-end miss; data misses
            // are hidden by the target's overlap factor.
            fetch_stall[i] = (r * 0.5).round() as u64;
            load_stall[i] = (r * (1.0 - t.miss_overlap)).round() as u64;
            store_stall[i] = (r * (1.0 - store_overlap)).round() as u64;
        }
        PipelineModel {
            clock: 0,
            ready: [0; TIMING_REGS],
            pending_fetch: 0,
            pending_mem: 0,
            branch_flush: false,
            cur_pc: 0,
            retired: 0,
            raw_stalls: 0,
            memory_stalls: 0,
            control_stalls: 0,
            fetch_stall,
            load_stall,
            store_stall,
            mispredict_penalty: t.mispredict_penalty.round().max(1.0) as u64,
            freq_hz: spec.freq_hz,
            predictor: BranchPredictor::with_tables(1024, btb_entries, ras_depth),
            prefetcher: StridePrefetcher::new(
                t.prefetch_streams,
                t.prefetch_degree,
                spec.hierarchy.line_bytes(),
            ),
        }
    }

    /// Result latency of a µop class: how many cycles after issue the
    /// destination register becomes readable.
    fn result_latency(class: MixClass) -> u64 {
        match class {
            MixClass::Load => 2, // one load-use bubble
            MixClass::FpAlu | MixClass::VecAlu => 3,
            MixClass::IntAlu | MixClass::Store | MixClass::Branch | MixClass::Other => 1,
        }
    }

    /// Total cycles on the pipeline clock so far.
    pub fn cycles(&self) -> u64 {
        self.clock
    }

    /// µops retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Seconds at the target's clock frequency.
    pub fn seconds(&self) -> f64 {
        self.clock as f64 / self.freq_hz
    }

    /// Cycle accounting by source. `pipeline` is the hazard-free issue
    /// stream plus RAW/load-use stalls; `total()` equals [`cycles`](Self::cycles).
    pub fn breakdown(&self) -> CycleBreakdown {
        CycleBreakdown {
            pipeline: (self.retired + self.raw_stalls) as f64,
            memory: self.memory_stalls as f64,
            control: self.control_stalls as f64,
        }
    }

    /// Branch mispredictions (direction and BTB-redirect) observed.
    pub fn mispredicts(&self) -> u64 {
        self.predictor.mispredicts()
    }

    /// Prefetch requests issued into the hierarchy.
    pub fn prefetches_issued(&self) -> u64 {
        self.prefetcher.issued()
    }
}

impl TimingHook for PipelineModel {
    fn on_fetch(&mut self, pc: usize, serviced: ServicedBy) {
        self.cur_pc = pc;
        self.pending_fetch += self.fetch_stall[level_idx(serviced)];
    }

    fn on_mem(
        &mut self,
        line_addr: u64,
        is_store: bool,
        serviced: ServicedBy,
        hier: &mut CacheHierarchy,
    ) {
        let table = if is_store {
            &self.store_stall
        } else {
            &self.load_stall
        };
        self.pending_mem += table[level_idx(serviced)];
        self.prefetcher.observe(self.cur_pc, line_addr, hier);
    }

    fn on_branch(&mut self, pc: usize, target: usize, taken: bool) {
        if self.predictor.observe_with_target(pc, target, taken) {
            self.branch_flush = true;
        }
    }

    fn on_uop(&mut self, uop: &UopEvent) {
        // One issue slot per µop.
        self.clock += 1;
        self.retired += 1;
        // Front-end stall buffered by on_fetch.
        self.clock += self.pending_fetch;
        self.memory_stalls += self.pending_fetch;
        self.pending_fetch = 0;
        // RAW hazards: wait for the slowest source operand.
        let mut wait = 0;
        for src in uop.srcs.iter().flatten() {
            wait = wait.max(self.ready[src.index()].saturating_sub(self.clock));
        }
        self.clock += wait;
        self.raw_stalls += wait;
        // Data-side stall buffered by on_mem (MEM stage).
        self.clock += self.pending_mem;
        self.memory_stalls += self.pending_mem;
        self.pending_mem = 0;
        // Publish the result latency on the scoreboard (WB).
        if let Some(dst) = uop.dst {
            self.ready[dst.index()] = self.clock + (Self::result_latency(uop.class) - 1);
        }
        // Branch resolved wrong in EX: flush the younger fetches.
        if self.branch_flush {
            self.clock += self.mispredict_penalty;
            self.control_stalls += self.mispredict_penalty;
            self.branch_flush = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtune_cache::HierarchyConfig;
    use simtune_isa::{
        AtomicCpu, Fpr, Gpr, Inst, Memory, Program, ProgramBuilder, RunLimits, TimingBridge,
    };

    fn run(spec: &TargetSpec, prog: &Program) -> PipelineModel {
        let mut cpu = AtomicCpu::new(&spec.isa);
        let mut mem = Memory::new();
        let mut hier = simtune_cache::CacheHierarchy::new(spec.hierarchy.clone());
        let mut model = PipelineModel::new(spec, 512, 8);
        let mut bridge = TimingBridge::new(&mut model);
        cpu.run_with_hook(prog, &mut mem, &mut hier, RunLimits::default(), &mut bridge)
            .unwrap();
        model
    }

    /// `n`-iteration loop with a data-dependent branch: taken when the
    /// iteration count modulo 3 is nonzero — hostile to a bimodal
    /// predictor.
    fn branchy_program(n: i64) -> Program {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Li { rd: Gpr(1), imm: 0 }); // i
        b.push(Inst::Li { rd: Gpr(2), imm: n });
        b.push(Inst::Li { rd: Gpr(3), imm: 0 }); // acc
        let top = b.bind_new_label();
        // if i % 2 == 0 { acc += 1 } — emulated with shift/sub.
        b.push(Inst::Slli {
            rd: Gpr(4),
            rs: Gpr(1),
            shamt: 63,
        });
        let skip = b.new_label();
        b.branch_ne(Gpr(4), Gpr(5), skip);
        b.push(Inst::Addi {
            rd: Gpr(3),
            rs: Gpr(3),
            imm: 1,
        });
        b.bind(skip);
        b.push(Inst::Addi {
            rd: Gpr(1),
            rs: Gpr(1),
            imm: 1,
        });
        b.branch_lt(Gpr(1), Gpr(2), top);
        b.push(Inst::Halt);
        b.build().unwrap()
    }

    /// Straight-line FP chain of the same length, no data-dependent
    /// branches at all.
    fn straightline_program(n: usize) -> Program {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Fli {
            fd: Fpr(1),
            imm: 1.0,
        });
        for _ in 0..n {
            b.push(Inst::Fadd {
                fd: Fpr(1),
                fs1: Fpr(1),
                fs2: Fpr(1),
            });
        }
        b.push(Inst::Halt);
        b.build().unwrap()
    }

    #[test]
    fn cycles_dominate_instruction_count() {
        let spec = TargetSpec::riscv_u74();
        let model = run(&spec, &branchy_program(500));
        assert!(model.cycles() >= model.retired());
        assert!(model.retired() > 1000);
    }

    #[test]
    fn breakdown_sums_to_the_clock() {
        let spec = TargetSpec::x86_ryzen_5800x();
        let model = run(&spec, &branchy_program(300));
        assert_eq!(model.breakdown().total() as u64, model.cycles());
    }

    #[test]
    fn mispredictions_cost_control_cycles_only_when_branches_are_hard() {
        let spec = TargetSpec::arm_cortex_a72();
        let hostile = run(&spec, &branchy_program(400));
        let straight = run(&spec, &straightline_program(400));
        assert!(hostile.mispredicts() > 0);
        assert!(hostile.breakdown().control > 0.0);
        assert_eq!(
            straight.breakdown().control,
            0.0,
            "branch-free code must not pay flush cycles"
        );
    }

    #[test]
    fn dependent_chain_stalls_more_than_independent_work() {
        let spec = TargetSpec::riscv_u74();
        // Serial chain: every Fadd reads the previous result.
        let chain = run(&spec, &straightline_program(200));
        // Independent: round-robin over eight accumulators.
        let mut b = ProgramBuilder::new();
        for f in 1..=8u8 {
            b.push(Inst::Fli {
                fd: Fpr(f),
                imm: 1.0,
            });
        }
        for i in 0..200u8 {
            let f = Fpr(1 + i % 8);
            b.push(Inst::Fadd {
                fd: f,
                fs1: f,
                fs2: f,
            });
        }
        b.push(Inst::Halt);
        let indep = run(&spec, &b.build().unwrap());
        let chain_raw = chain.breakdown().pipeline - chain.retired() as f64;
        let indep_raw = indep.breakdown().pipeline - indep.retired() as f64;
        assert!(
            chain_raw > indep_raw * 4.0,
            "RAW scoreboard must punish serial chains: {chain_raw} vs {indep_raw}"
        );
    }

    #[test]
    fn identical_runs_produce_identical_cycles() {
        let spec = TargetSpec::x86_ryzen_5800x();
        let prog = branchy_program(250);
        let a = run(&spec, &prog);
        let b = run(&spec, &prog);
        assert_eq!(a.cycles(), b.cycles());
        assert_eq!(a.breakdown(), b.breakdown());
        assert_eq!(a.mispredicts(), b.mispredicts());
    }

    #[test]
    fn prefetcher_fills_the_shared_hierarchy() {
        let spec = TargetSpec::x86_ryzen_5800x();
        let mut b = ProgramBuilder::new();
        b.push(Inst::Li {
            rd: Gpr(1),
            imm: 0x100_0000,
        });
        b.push(Inst::Li { rd: Gpr(2), imm: 0 });
        b.push(Inst::Li {
            rd: Gpr(3),
            imm: 4000,
        });
        let top = b.bind_new_label();
        b.push(Inst::Flw {
            fd: Fpr(1),
            rs: Gpr(1),
            imm: 0,
        });
        b.push(Inst::Addi {
            rd: Gpr(1),
            rs: Gpr(1),
            imm: 64,
        });
        b.push(Inst::Addi {
            rd: Gpr(2),
            rs: Gpr(2),
            imm: 1,
        });
        b.branch_lt(Gpr(2), Gpr(3), top);
        b.push(Inst::Halt);
        let model = run(&spec, &b.build().unwrap());
        assert!(model.prefetches_issued() > 0);
    }

    #[test]
    fn tiny_hierarchy_misses_cost_memory_cycles() {
        let mut spec = TargetSpec::riscv_u74();
        spec.hierarchy = HierarchyConfig::tiny_for_tests();
        spec.isa = simtune_isa::TargetIsa::riscv_u74();
        let model = run(&spec, &branchy_program(100));
        assert!(model.breakdown().memory > 0.0, "cold misses must be paid");
    }
}
