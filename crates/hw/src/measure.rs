use crate::{NoiseModel, TargetSpec, TimingModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simtune_isa::{AtomicCpu, Executable, Memory, RunLimits, SimError};
use simtune_linalg::stats::median;

/// Benchmarking protocol parameters (paper Section IV: `N_exe = 15`,
/// `t_cooldown = 1 s`, caches flushed, median taken).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasureConfig {
    /// Repetitions per implementation.
    pub n_exe: usize,
    /// Idle seconds inserted between repetitions.
    pub cooldown_s: f64,
    /// Instruction budget per run.
    pub limits: RunLimits,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            n_exe: 15,
            cooldown_s: 1.0,
            limits: RunLimits::default(),
        }
    }
}

/// Result of benchmarking one implementation on the emulated target.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// The noisy per-repetition wall times, in order.
    pub samples: Vec<f64>,
    /// Median of `samples`: the reference time `t_ref`.
    pub t_ref: f64,
    /// The deterministic (noise-free) model time, for diagnostics.
    pub base_seconds: f64,
}

impl Measurement {
    /// Total wall-clock the benchmarking protocol occupies the device:
    /// `(t_cooldown + t_ref) · N_exe` — the denominator of the paper's
    /// Equation 4.
    pub fn native_benchmark_seconds(&self, cfg: &MeasureConfig) -> f64 {
        native_benchmark_seconds(self.t_ref, cfg)
    }
}

/// `(t_cooldown + t_ref) · N_exe` (paper Equation 4 denominator).
pub fn native_benchmark_seconds(t_ref: f64, cfg: &MeasureConfig) -> f64 {
    (cfg.cooldown_s + t_ref) * cfg.n_exe as f64
}

/// Runs the timing model once and returns the deterministic execution
/// time in seconds (no measurement noise).
///
/// # Errors
///
/// Propagates simulator faults ([`SimError`]).
pub fn measure_base_seconds(exe: &Executable, spec: &TargetSpec) -> Result<f64, SimError> {
    measure_base(exe, spec, RunLimits::default()).map(|m| m.seconds())
}

fn measure_base(
    exe: &Executable,
    spec: &TargetSpec,
    limits: RunLimits,
) -> Result<TimingModel, SimError> {
    let mut mem = Memory::new();
    for (base, values) in &exe.data_segments {
        mem.write_f32_slice(*base, values)?;
    }
    let mut hier = simtune_cache::CacheHierarchy::new(spec.hierarchy.clone());
    let mut cpu = AtomicCpu::new(&spec.isa);
    let mut model = TimingModel::new(spec);
    cpu.run_with_hook(&exe.program, &mut mem, &mut hier, limits, &mut model)?;
    Ok(model)
}

/// Benchmarks `exe` on the emulated target following the paper's
/// protocol: `n_exe` repetitions, cooldowns in between, caches flushed
/// before each repetition (each repetition starts from a cold simulator
/// state), median as `t_ref`.
///
/// The timing model itself is deterministic, so the expensive part runs
/// once; the repetitions sample the measurement-noise model around it —
/// which is exactly what distinguishes repetitions on real hardware.
///
/// # Errors
///
/// Propagates simulator faults ([`SimError`]).
///
/// # Example
///
/// See the crate-level example.
pub fn measure(
    exe: &Executable,
    spec: &TargetSpec,
    cfg: &MeasureConfig,
    seed: u64,
) -> Result<Measurement, SimError> {
    let base = measure_base(exe, spec, cfg.limits)?.seconds();
    let mut noise = NoiseModel::new(spec.noise.clone());
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_CAFE);
    let mut samples = Vec::with_capacity(cfg.n_exe);
    for rep in 0..cfg.n_exe {
        if rep > 0 {
            noise.cooldown(cfg.cooldown_s);
        }
        samples.push(noise.sample(base, &mut rng));
    }
    let t_ref = median(&samples);
    Ok(Measurement {
        samples,
        t_ref,
        base_seconds: base,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtune_isa::{Fpr, Gpr, Inst, ProgramBuilder};

    fn loop_exe(spec: &TargetSpec, iters: i64) -> Executable {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Li {
            rd: Gpr(1),
            imm: 0x100_0000,
        });
        b.push(Inst::Li { rd: Gpr(2), imm: 0 });
        b.push(Inst::Li {
            rd: Gpr(3),
            imm: iters,
        });
        let top = b.bind_new_label();
        b.push(Inst::Flw {
            fd: Fpr(1),
            rs: Gpr(1),
            imm: 0,
        });
        b.push(Inst::Addi {
            rd: Gpr(1),
            rs: Gpr(1),
            imm: 4,
        });
        b.push(Inst::Addi {
            rd: Gpr(2),
            rs: Gpr(2),
            imm: 1,
        });
        b.branch_lt(Gpr(2), Gpr(3), top);
        b.push(Inst::Halt);
        Executable::new("loop", b.build().unwrap(), spec.isa.clone())
    }

    #[test]
    fn measurement_has_n_exe_samples_and_median() {
        let spec = TargetSpec::riscv_u74();
        let m = measure(&loop_exe(&spec, 1000), &spec, &MeasureConfig::default(), 1).unwrap();
        assert_eq!(m.samples.len(), 15);
        assert!(m.t_ref > 0.0);
        let mut sorted = m.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(m.t_ref, sorted[7], "median of 15 is the 8th");
    }

    #[test]
    fn measurements_are_reproducible_per_seed() {
        let spec = TargetSpec::arm_cortex_a72();
        let exe = loop_exe(&spec, 500);
        let cfg = MeasureConfig::default();
        let a = measure(&exe, &spec, &cfg, 7).unwrap();
        let b = measure(&exe, &spec, &cfg, 7).unwrap();
        let c = measure(&exe, &spec, &cfg, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a.samples, c.samples);
        // Different seeds still agree on the underlying base time.
        assert_eq!(a.base_seconds, c.base_seconds);
    }

    #[test]
    fn median_is_robust_to_outliers() {
        // Long enough that the absolute timer floor is negligible.
        let spec = TargetSpec::x86_ryzen_5800x();
        let exe = loop_exe(&spec, 2_000_000);
        let m = measure(&exe, &spec, &MeasureConfig::default(), 3).unwrap();
        // t_ref stays within a few percent of base even though individual
        // samples may spike by up to 30 %.
        assert!((m.t_ref - m.base_seconds).abs() / m.base_seconds < 0.1);
    }

    #[test]
    fn short_runs_are_relatively_noisier_than_long_runs() {
        // The paper's observation: fast x86 kernels have noisier
        // references. Short program: floor noise dominates.
        let spec = TargetSpec::x86_ryzen_5800x();
        let short = measure(&loop_exe(&spec, 500), &spec, &MeasureConfig::default(), 3).unwrap();
        let long = measure(
            &loop_exe(&spec, 2_000_000),
            &spec,
            &MeasureConfig::default(),
            3,
        )
        .unwrap();
        let rel_err = |m: &Measurement| (m.t_ref - m.base_seconds).abs() / m.base_seconds;
        assert!(rel_err(&short) > rel_err(&long));
    }

    #[test]
    fn longer_programs_take_longer() {
        let spec = TargetSpec::riscv_u74();
        let short = measure_base_seconds(&loop_exe(&spec, 100), &spec).unwrap();
        let long = measure_base_seconds(&loop_exe(&spec, 10_000), &spec).unwrap();
        assert!(long > short * 10.0);
    }

    #[test]
    fn native_benchmark_time_follows_equation_4_denominator() {
        let cfg = MeasureConfig::default();
        let t = native_benchmark_seconds(0.5, &cfg);
        assert!((t - (1.0 + 0.5) * 15.0).abs() < 1e-12);
    }

    #[test]
    fn skipping_cooldown_inflates_thermal_targets() {
        // ARM with aggressive thermals: no cooldown -> later samples are
        // hotter -> median rises.
        let spec = TargetSpec::arm_cortex_a72();
        let exe = loop_exe(&spec, 5000);
        let with_cd = measure(&exe, &spec, &MeasureConfig::default(), 5).unwrap();
        let without = measure(
            &exe,
            &spec,
            &MeasureConfig {
                cooldown_s: 0.0,
                ..MeasureConfig::default()
            },
            5,
        )
        .unwrap();
        // The thermal effect needs a long enough base time to register;
        // with a tiny kernel the two are close, so only check ordering
        // weakly.
        assert!(without.t_ref >= with_cd.t_ref * 0.99);
    }
}
