use simtune_cache::CacheHierarchy;

/// A PC-indexed stride prefetcher, as found in all three target cores.
///
/// Each table entry tracks the last line address and observed stride for
/// one load/store instruction (identified by its program counter). Two
/// consecutive accesses with the same stride *confirm* the stream; from
/// then on, each access prefetches the next `degree` lines into the cache
/// hierarchy. Prefetching acts on the timing model's private hierarchy —
/// its effect (hiding miss latency for regular streams, polluting the
/// cache for irregular ones) is invisible to the instruction-accurate
/// statistics the score predictor consumes, which is a deliberate source
/// of model mismatch.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    entries: Vec<Entry>,
    degree: usize,
    line_bytes: u64,
    issued: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    pc: usize,
    valid: bool,
    last_line: u64,
    stride: i64,
    confidence: u8,
}

impl StridePrefetcher {
    /// Creates a prefetcher with `streams` table entries fetching
    /// `degree` lines ahead. `streams == 0` disables prefetching.
    pub fn new(streams: usize, degree: usize, line_bytes: u64) -> Self {
        StridePrefetcher {
            entries: vec![Entry::default(); streams],
            degree,
            line_bytes,
            issued: 0,
        }
    }

    /// Total prefetch requests issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Observes a demand access by instruction `pc` to `line_addr` and
    /// issues prefetches into `hier` once the stream is confirmed.
    pub fn observe(&mut self, pc: usize, line_addr: u64, hier: &mut CacheHierarchy) {
        if self.entries.is_empty() {
            return;
        }
        let idx = pc % self.entries.len();
        let e = &mut self.entries[idx];
        if !e.valid || e.pc != pc {
            *e = Entry {
                pc,
                valid: true,
                last_line: line_addr,
                stride: 0,
                confidence: 0,
            };
            return;
        }
        let stride = line_addr as i64 - e.last_line as i64;
        if stride == 0 {
            // Same line again: nothing to learn.
            return;
        }
        if stride == e.stride {
            e.confidence = e.confidence.saturating_add(1);
        } else {
            e.stride = stride;
            e.confidence = 0;
        }
        e.last_line = line_addr;
        if e.confidence >= 2 {
            let (stride, degree, line) = (e.stride, self.degree, self.line_bytes);
            for k in 1..=degree {
                let next = line_addr as i64 + stride * k as i64;
                if next >= 0 {
                    // Prefetches are reads: they fill but do not dirty.
                    let _ = hier.data_read(next as u64 & !(line - 1));
                    self.issued += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtune_cache::HierarchyConfig;

    fn hier() -> CacheHierarchy {
        CacheHierarchy::new(HierarchyConfig::tiny_for_tests())
    }

    #[test]
    fn disabled_prefetcher_is_inert() {
        let mut p = StridePrefetcher::new(0, 2, 64);
        let mut h = hier();
        p.observe(10, 0, &mut h);
        p.observe(10, 64, &mut h);
        p.observe(10, 128, &mut h);
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn confirmed_stream_prefetches_next_lines() {
        let mut p = StridePrefetcher::new(4, 1, 64);
        let mut h = hier();
        // Three accesses with stride 64 from the same pc confirm the
        // stream on the third.
        p.observe(10, 0, &mut h);
        p.observe(10, 64, &mut h); // stride learned, confidence 0
        p.observe(10, 128, &mut h); // confidence 1
        p.observe(10, 192, &mut h); // confidence 2 -> prefetch 256
        assert!(p.issued() >= 1);
        assert_eq!(h.data_read(256), simtune_cache::ServicedBy::L1d);
    }

    #[test]
    fn irregular_stream_never_confirms() {
        let mut p = StridePrefetcher::new(4, 1, 64);
        let mut h = hier();
        for addr in [0u64, 64, 320, 128, 1024, 64, 4096] {
            p.observe(10, addr, &mut h);
        }
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn pc_conflicts_reset_entries() {
        let mut p = StridePrefetcher::new(2, 1, 64);
        let mut h = hier();
        // pcs 3 and 5 collide in a 2-entry table: streams keep resetting.
        for i in 0..10u64 {
            p.observe(3, i * 64, &mut h);
            p.observe(5, 4096 + i * 64, &mut h);
        }
        assert_eq!(p.issued(), 0, "thrashing table cannot confirm streams");
    }
}
