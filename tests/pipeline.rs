//! Cross-crate integration tests: the full training-phase and
//! execution-phase pipelines of the paper, exercised end to end at
//! miniature scale.

use simtune::core::{
    collect_group_data, evaluate_predictor, holdout_group_curves, parallel_speedup_k,
    split_train_test, tune_with_predictor, CollectOptions, FeatureConfig, GroupData,
    ScorePredictor, StrategySpec, TuneOptions, WindowKind,
};
use simtune::hw::{measure, MeasureConfig, TargetSpec};
use simtune::isa::{simulate, RunLimits};
use simtune::predict::PredictorKind;
use simtune::tensor::{build_executable, conv2d_bias_relu, Conv2dShape, Schedule};

fn small_shape() -> Conv2dShape {
    Conv2dShape {
        n: 1,
        h: 10,
        w: 12,
        co: 8,
        ci: 4,
        kh: 3,
        kw: 3,
        stride: (1, 1),
        pad: (1, 1),
    }
}

fn collect(spec: &TargetSpec, gid: usize, n: usize, seed: u64) -> GroupData {
    let def = conv2d_bias_relu(&small_shape());
    collect_group_data(
        &def,
        spec,
        gid,
        &CollectOptions {
            n_impls: n,
            n_parallel: 2,
            seed,
            max_attempts_factor: 40,
            ..CollectOptions::default()
        },
    )
    .expect("collection succeeds")
}

#[test]
fn collection_is_deterministic_per_seed() {
    let spec = TargetSpec::riscv_u74();
    let a = collect(&spec, 0, 10, 5);
    let b = collect(&spec, 0, 10, 5);
    assert_eq!(a.t_ref, b.t_ref, "same seed, same reference times");
    for (x, y) in a.stats.iter().zip(&b.stats) {
        assert_eq!(x.inst_mix, y.inst_mix);
        assert_eq!(x.cache, y.cache);
    }
    let c = collect(&spec, 0, 10, 6);
    assert_ne!(a.t_ref, c.t_ref, "different seed, different data");
}

#[test]
fn simulator_stats_correlate_with_target_times() {
    // The core premise of the paper: instruction-accurate statistics
    // carry enough signal about target runtime to rank implementations.
    let spec = TargetSpec::riscv_u74();
    let data = collect(&spec, 0, 24, 11);
    let insts: Vec<f64> = data
        .stats
        .iter()
        .map(|s| s.inst_mix.total() as f64)
        .collect();
    let rho = simtune::linalg::stats::spearman(&insts, &data.t_ref);
    assert!(
        rho > 0.5,
        "instruction counts should correlate with runtime on an in-order core: {rho}"
    );
}

#[test]
fn trained_predictor_ranks_at_least_as_well_as_instruction_counts() {
    // Averaged over several splits to be robust at miniature scale: the
    // learned ordering must correlate with the measured runtimes at
    // least as well as the naive rank-by-instruction-count baseline.
    let spec = TargetSpec::x86_ryzen_5800x();
    let data = collect(&spec, 0, 60, 13);
    let mut model_rho = 0.0;
    let mut baseline_rho = 0.0;
    const SPLITS: usize = 3;
    for round in 0..SPLITS {
        let (train_idx, test_idx) = split_train_test(data.len(), 15, round as u64);
        let train = data.subset(&train_idx);
        let test = data.subset(&test_idx);
        let mut predictor =
            ScorePredictor::new(PredictorKind::Xgboost, "x86", "conv", round as u64);
        predictor
            .train(std::slice::from_ref(&train))
            .expect("trains");
        let scores = predictor.score_group(&test.stats).expect("scores");
        let baseline: Vec<f64> = test
            .stats
            .iter()
            .map(|s| s.inst_mix.total() as f64)
            .collect();
        model_rho += simtune::linalg::stats::spearman(&scores, &test.t_ref);
        baseline_rho += simtune::linalg::stats::spearman(&baseline, &test.t_ref);
    }
    model_rho /= SPLITS as f64;
    baseline_rho /= SPLITS as f64;
    assert!(
        model_rho > 0.5,
        "learned ordering must carry real signal: rho {model_rho:.3}"
    );
    assert!(
        model_rho >= baseline_rho - 0.1,
        "learned rho {model_rho:.3} clearly worse than baseline {baseline_rho:.3}"
    );
}

#[test]
fn full_protocol_produces_bounded_metrics() {
    let spec = TargetSpec::arm_cortex_a72();
    let groups = vec![collect(&spec, 0, 24, 17), collect(&spec, 1, 24, 18)];
    let report = evaluate_predictor(
        PredictorKind::LinReg,
        &groups,
        "arm",
        "conv",
        6,
        3,
        5,
        FeatureConfig::default(),
    )
    .expect("evaluates");
    assert_eq!(report.per_group.len(), 2);
    for m in &report.per_group {
        assert!(m.e_top1 >= 0.0 && m.e_top1.is_finite());
        assert!(m.q_low >= 0.0 && m.q_high >= 0.0);
        assert!(m.r_top1 > 0.0 && m.r_top1 <= 100.0);
    }
}

#[test]
fn holdout_group_transfer_works() {
    // Figure 5's claim: a predictor trained WITHOUT a group still ranks
    // that group usefully.
    let spec = TargetSpec::riscv_u74();
    let g0 = collect(&spec, 0, 30, 23);
    let g1 = collect(&spec, 1, 30, 29);
    let (_, test_idx) = split_train_test(g1.len(), 10, 1);
    let curves = holdout_group_curves(
        PredictorKind::Xgboost,
        std::slice::from_ref(&g0),
        &g1,
        &test_idx,
        "riscv",
        "conv",
        3,
    )
    .expect("transfers");
    // The prediction-ordered series should correlate with the sorted one.
    let rho = simtune::linalg::stats::spearman(&curves.prediction_ordered, &curves.sorted_ref);
    assert!(rho > 0.3, "held-out transfer correlation too weak: {rho}");
}

#[test]
fn execution_phase_needs_no_hardware_and_finds_good_schedules() {
    let spec = TargetSpec::riscv_u74();
    let def = conv2d_bias_relu(&small_shape());
    let data = collect(&spec, 0, 30, 31);
    let mut predictor = ScorePredictor::new(PredictorKind::Xgboost, "riscv", "conv", 2);
    predictor
        .train(std::slice::from_ref(&data))
        .expect("trains");

    let result = tune_with_predictor(
        &def,
        &spec,
        &predictor,
        &TuneOptions {
            n_trials: 20,
            batch_size: 5,
            n_parallel: 2,
            window: WindowKind::Dynamic,
            seed: 5,
            strategy: StrategySpec::Evolutionary,
            ..TuneOptions::default()
        },
    )
    .expect("tunes");
    assert_eq!(result.history.len(), 20);
    assert_eq!(result.strategy, "evolutionary");

    // Measure the predicted-best on the emulated board and compare with
    // the median of the training distribution: it should not be a dud.
    let exe =
        build_executable(&def, &result.best().schedule, &spec.isa, 0x5EED, "win").expect("builds");
    let m = measure(&exe, &spec, &MeasureConfig::default(), 1).expect("measures");
    let mut times = data.t_ref.clone();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = times[times.len() / 2];
    assert!(
        m.t_ref <= median * 1.25,
        "predicted best ({:.6}s) much slower than median ({median:.6}s)",
        m.t_ref
    );
}

#[test]
fn equation_4_end_to_end() {
    // Collect real (t_sim, t_ref) pairs and check K is sane: positive,
    // and larger for faster targets at fixed simulation cost.
    let x86 = collect(&TargetSpec::x86_ryzen_5800x(), 0, 8, 41);
    let riscv = collect(&TargetSpec::riscv_u74(), 0, 8, 41);
    let cfg = MeasureConfig::default();
    let k = |g: &GroupData| {
        g.sim_seconds
            .iter()
            .zip(&g.t_ref)
            .map(|(&s, &r)| parallel_speedup_k(s, r, cfg.cooldown_s, cfg.n_exe))
            .max()
            .expect("non-empty")
    };
    assert!(k(&x86) >= 1);
    assert!(k(&riscv) >= 1);
    // The x86 target is faster, so its native benchmarking takes less
    // time per impl; K_x86 >= K_riscv for identical kernels & host.
    assert!(
        x86.t_ref.iter().sum::<f64>() < riscv.t_ref.iter().sum::<f64>(),
        "x86 must be the faster target"
    );
}

#[test]
fn atomic_and_timing_models_execute_identically() {
    // The timing model re-executes the same program: functional results
    // and therefore output buffers must agree with the atomic run.
    let spec = TargetSpec::arm_cortex_a72();
    let def = conv2d_bias_relu(&small_shape());
    let schedule = Schedule::default_for(&def);
    let exe = build_executable(&def, &schedule, &spec.isa, 7, "x").expect("builds");
    let atomic = simulate(&exe, &spec.hierarchy, RunLimits::default()).expect("atomic runs");
    // measure() re-runs through the timing hook; if it produced different
    // functional behavior, base_seconds would be garbage or the run would
    // fault. Compare instruction-visible effects via a second atomic run
    // plus the timing run's success.
    let m = measure(&exe, &spec, &MeasureConfig::default(), 1).expect("timing runs");
    assert!(m.base_seconds > 0.0);
    let atomic2 = simulate(&exe, &spec.hierarchy, RunLimits::default()).expect("atomic runs");
    assert_eq!(atomic.stats.inst_mix, atomic2.stats.inst_mix);
}
