//! Property-based tests (proptest) on the core invariants of the
//! substrates: cache bookkeeping, metric bounds, feature normalization,
//! measurement statistics and schedule correctness over randomized
//! shapes and schedules.

use proptest::prelude::*;
use simtune::cache::{
    AccessKind, Cache, CacheConfig, CacheHierarchy, HierarchyConfig, ReplacementPolicy,
};
use simtune::core::{prediction_metrics, quality_score, GroupMeans, RawSample};
use simtune::linalg::Matrix;
use simtune::tensor::{matmul, validate_schedule, Schedule, SketchGenerator, TargetIsa};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cache invariant: accesses = hits + misses per kind; replacements
    /// never exceed misses; occupancy never exceeds capacity.
    #[test]
    fn cache_counter_invariants(
        addrs in prop::collection::vec(0u64..65536, 1..300),
        writes in prop::collection::vec(any::<bool>(), 300),
        policy_idx in 0usize..4,
    ) {
        let policy = ReplacementPolicy::all()[policy_idx];
        let cfg = CacheConfig::new("t", 1024, 4, 4, 64, policy).expect("valid");
        let mut cache = Cache::new(cfg);
        for (i, addr) in addrs.iter().enumerate() {
            let kind = if writes[i % writes.len()] {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            cache.access(*addr, kind);
        }
        let s = *cache.stats();
        prop_assert_eq!(s.accesses(), addrs.len() as u64);
        prop_assert!(s.read_replacements <= s.read_misses);
        prop_assert!(s.write_replacements <= s.write_misses);
        // At most 16 lines can be resident (4 sets x 4 ways).
        let resident = (0u64..1024).filter(|i| cache.contains(i * 64)).count();
        prop_assert!(resident <= 16);
    }

    /// Hierarchy invariant: L2 accesses are bounded by L1 misses plus
    /// L1 write-backs (no traffic is invented).
    #[test]
    fn hierarchy_traffic_conservation(
        addrs in prop::collection::vec(0u64..(1 << 20), 1..300),
    ) {
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny_for_tests());
        for (i, addr) in addrs.iter().enumerate() {
            if i % 3 == 0 {
                h.data_write(*addr);
            } else {
                h.data_read(*addr);
            }
        }
        let s = h.stats();
        let l1_misses = s.l1d.read_misses + s.l1d.write_misses;
        let l1_evictions = s.l1d.read_replacements + s.l1d.write_replacements;
        prop_assert!(s.l2.accesses() <= l1_misses + l1_evictions);
        prop_assert!(s.dram_reads <= l1_misses);
    }

    /// Metric bounds: R_top1 in (0, 100]; E_top1 and Q non-negative;
    /// perfect orderings score zero.
    #[test]
    fn metric_bounds(
        times in prop::collection::vec(0.001f64..10.0, 2..80),
        seed in any::<u64>(),
    ) {
        // Random score permutation derived from the seed.
        let mut scores: Vec<f64> = (0..times.len())
            .map(|i| ((i as u64).wrapping_mul(seed | 1) % 1000) as f64)
            .collect();
        // Break ties deterministically.
        for (i, s) in scores.iter_mut().enumerate() {
            *s += i as f64 * 1e-6;
        }
        let m = prediction_metrics(&times, &scores);
        prop_assert!(m.r_top1 > 0.0 && m.r_top1 <= 100.0);
        prop_assert!(m.e_top1 >= 0.0);
        prop_assert!(m.q_low >= 0.0 && m.q_high >= 0.0);

        // Perfect prediction: scores equal to times.
        let perfect = prediction_metrics(&times, &times);
        prop_assert!(perfect.e_top1 < 1e-9);
        prop_assert!(perfect.q_low < 1e-9 && perfect.q_high < 1e-9);
    }

    /// Quality score is zero iff the sequence is non-decreasing.
    #[test]
    fn quality_score_zero_iff_sorted(
        mut times in prop::collection::vec(0.01f64..10.0, 2..50),
    ) {
        let q_raw = quality_score(&times);
        let sorted = {
            let mut t = times.clone();
            t.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            t
        };
        prop_assert!(quality_score(&sorted) < 1e-12);
        let is_sorted = times.windows(2).all(|w| w[0] <= w[1]);
        if !is_sorted {
            prop_assert!(q_raw > 0.0);
        }
        times.reverse();
    }

    /// Feature normalization (Eq. 2): the group-normalized features of a
    /// group have zero mean across the group.
    #[test]
    fn group_normalized_features_are_centered(
        values in prop::collection::vec(0.0f64..1.0, 4..40),
    ) {
        let samples: Vec<RawSample> = values
            .iter()
            .map(|&v| RawSample { ratios: vec![v], total_insts: 1.0 + v })
            .collect();
        let means = GroupMeans::exact(&samples);
        let cfg = simtune::core::FeatureConfig::default();
        let normalized: Vec<f64> = samples
            .iter()
            .map(|s| means.features(s, &cfg)[1]) // [raw, normalized, insts]
            .collect();
        let mean = normalized.iter().sum::<f64>() / normalized.len() as f64;
        prop_assert!(mean.abs() < 1e-9, "normalized mean {mean}");
    }

    /// Linear algebra: Cholesky solve residuals stay small for random
    /// SPD systems.
    #[test]
    fn cholesky_solves_random_spd(
        seed in any::<u64>(),
        n in 2usize..12,
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        let b_mat = Matrix::from_fn(n, n, |_, _| next());
        let mut a = b_mat.matmul(&b_mat.transpose()).expect("square");
        a.add_diagonal(n as f64);
        let rhs: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = a.cholesky().expect("spd").solve(&rhs).expect("solves");
        let r = a.mat_vec(&x);
        for (ri, bi) in r.iter().zip(&rhs) {
            prop_assert!((ri - bi).abs() < 1e-8);
        }
    }
}

proptest! {
    // Schedule correctness is expensive (build + simulate); fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any sketch the generator emits for random (small) matmul shapes
    /// compiles and computes the correct result on every target.
    #[test]
    fn random_sketches_compute_correctly(
        n in 2usize..7,
        m in 2usize..9,
        l in 2usize..9,
        seed in any::<u64>(),
        target_idx in 0usize..3,
    ) {
        let def = matmul(n, m * 4, l); // m*4 keeps vectorizable widths present
        let target = TargetIsa::paper_targets()[target_idx].clone();
        let gen = SketchGenerator::new(&def, target.clone());
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let params = gen.random(&mut rng);
        let schedule = gen.schedule(&params);
        prop_assume!(schedule.apply(&def, &target).is_ok());
        validate_schedule(
            &def,
            &schedule,
            &target,
            &HierarchyConfig::tiny_for_tests(),
            seed,
            1e-3,
        )
        .expect("schedule computes the correct matmul");
    }

    /// The default schedule is always valid and correct for any shape.
    #[test]
    fn default_schedule_always_valid(
        n in 1usize..6,
        m in 1usize..10,
        l in 1usize..10,
    ) {
        let def = matmul(n, m, l);
        let target = TargetIsa::riscv_u74();
        let schedule = Schedule::default_for(&def);
        validate_schedule(
            &def,
            &schedule,
            &target,
            &HierarchyConfig::tiny_for_tests(),
            1,
            1e-3,
        )
        .expect("default schedule correct");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every built-in search strategy proposes only candidates that lie
    /// inside the template space it was built over, for any seed, batch
    /// size and number of rounds, and never proposes a duplicate.
    #[test]
    fn template_strategies_stay_inside_the_space(
        seed in any::<u64>(),
        batch in 1usize..16,
        rounds in 1usize..5,
        strategy_idx in 0usize..5,
        m in 2usize..5,
    ) {
        let def = matmul(8, m * 4, 8);
        let space = simtune::tensor::ConfigSpace::matmul(&def, &TargetIsa::arm_cortex_a72());
        let template = simtune::TemplateSpace::new(space.clone());
        let spec = simtune::StrategySpec::all()[strategy_idx].clone();
        let mut strategy = spec
            .build_template(space, seed)
            .expect("built-ins drive template spaces");
        let mut seen = std::collections::HashSet::new();
        let mut history = Vec::new();
        for _ in 0..rounds {
            let proposals = strategy.propose(&history, batch);
            prop_assert!(proposals.len() <= batch);
            for cfg in &proposals {
                prop_assert!(
                    simtune::SearchSpace::contains(&template, cfg),
                    "{} proposed {:?} outside the space", strategy.name(), cfg
                );
                prop_assert!(
                    seen.insert(format!("{cfg:?}")),
                    "{} proposed {:?} twice", strategy.name(), cfg
                );
            }
            // Deterministic synthetic objective keeps the walk moving.
            let results: Vec<simtune::Evaluation<Vec<usize>>> = proposals
                .into_iter()
                .map(|cfg| {
                    let score = cfg.iter().sum::<usize>() as f64;
                    simtune::Evaluation { point: cfg, score }
                })
                .collect();
            strategy.observe(&results);
            history.extend(results);
        }
    }

    /// Every built-in strategy over the sketch space proposes only
    /// genotypes the generator itself considers members of the space.
    #[test]
    fn sketch_strategies_stay_inside_the_space(
        seed in any::<u64>(),
        batch in 1usize..12,
        strategy_idx in 0usize..5,
        target_idx in 0usize..3,
    ) {
        let def = matmul(8, 16, 8);
        let target = TargetIsa::paper_targets()[target_idx].clone();
        let gen = SketchGenerator::new(&def, target.clone());
        let spec = simtune::StrategySpec::all()[strategy_idx].clone();
        let mut strategy = spec.build_sketch(gen.clone(), seed);
        let mut history = Vec::new();
        for _ in 0..3 {
            let proposals = strategy.propose(&history, batch);
            for p in &proposals {
                prop_assert!(
                    gen.contains(p),
                    "{} proposed {:?} outside the space", strategy.name(), p
                );
            }
            let results: Vec<simtune::Evaluation<_>> = proposals
                .into_iter()
                .map(|p| {
                    let score = p.spatial_tiles.iter().sum::<usize>() as f64;
                    simtune::Evaluation { point: p, score }
                })
                .collect();
            strategy.observe(&results);
            history.extend(results);
        }
    }
}
