//! Differential property suite: every replay engine must be
//! observationally identical to the re-decoding interpreter.
//!
//! Full-run equivalence is asserted through the shared differential
//! harness ([`simtune::core::diffharness::DiffHarness`]) so the
//! observable-state comparison (stats, register files, memory image,
//! error identity) lives in exactly one place — the same matrix the
//! `torture_fuzz` gate runs. Random flat-loop programs from the local
//! generator and seeded mini-torture programs ([`torture_program_with`])
//! both go through the whole engine × fidelity × `n_parallel` matrix.
//!
//! Prefix-budget equivalence (engines stopping at the same retirement
//! with identical partial state) is not a harness dimension, so those
//! properties keep their local run/capture machinery. Floats are
//! compared through their bit patterns so NaN-producing programs
//! (e.g. `fdiv 0/0`) still compare exactly.
//!
//! `PROPTEST_CASES` scales every property's case count (the vendored
//! proptest has no env support of its own) — CI's engine-equivalence
//! step raises it well above the local default.

use proptest::prelude::*;
use simtune::cache::{CacheHierarchy, HierarchyConfig};
use simtune::core::diffharness::DiffHarness;
use simtune::isa::{
    AtomicCpu, DecodedEngine, DecodedProgram, ExecEngine, Executable, Fpr, Gpr, Inst, InterpEngine,
    Memory, NoopHook, Program, ProgramBuilder, RunLimits, TargetIsa, ThreadedEngine,
    ThreadedProgram, TortureConfig, Vr, DATA_BASE,
};
use std::sync::OnceLock;

/// Bytes of the data window the generated programs read and write.
const DATA_WINDOW: u64 = 2048;

/// Pure core of [`cases`]: resolves a property's case count from an
/// (optional) environment override, falling back to `default` when the
/// override is absent or not a number.
fn cases_from(env: Option<&str>, default: u32) -> u32 {
    env.and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Case count for one property: the `PROPTEST_CASES` environment
/// variable when set (CI's equivalence step raises it), `default`
/// otherwise.
fn cases(default: u32) -> u32 {
    cases_from(std::env::var("PROPTEST_CASES").ok().as_deref(), default)
}

#[test]
fn cases_env_override_parses_numbers_and_ignores_garbage() {
    assert_eq!(cases_from(None, 48), 48);
    assert_eq!(cases_from(Some("1024"), 48), 1024);
    assert_eq!(cases_from(Some("0x40"), 48), 48, "hex is not accepted");
    assert_eq!(cases_from(Some(""), 48), 48);
    assert_eq!(cases_from(Some("lots"), 48), 48);
    assert_eq!(cases_from(Some("-3"), 48), 48, "case counts are unsigned");
    assert_eq!(cases_from(Some(" 12"), 48), 48, "no whitespace trimming");
}

#[test]
fn cases_reads_the_process_environment() {
    // A valid numeric override must round-trip through the real env
    // plumbing. The sentinel is a plausible case count so a property
    // racing this test at worst runs fewer cases, never breaks.
    std::env::set_var("PROPTEST_CASES", "3");
    assert_eq!(cases(48), 3);
    std::env::remove_var("PROPTEST_CASES");
    assert_eq!(cases(48), 48);
}

/// One harness for the whole suite; its pooled worker sessions are the
/// expensive part and every property reuses them.
fn harness() -> &'static DiffHarness {
    static H: OnceLock<DiffHarness> = OnceLock::new();
    H.get_or_init(DiffHarness::tiny)
}

/// Runs `exe` through the shared differential matrix and fails with the
/// full mismatch report on any divergence.
fn assert_matrix_agrees(exe: &Executable) {
    let (combos, _faulted, divs) = harness().diff_executable(exe);
    assert!(
        divs.is_empty(),
        "{} diverged:\n{}",
        exe.name,
        divs.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(combos > 30, "{}: differential matrix shrank", exe.name);
}

/// The deterministic data image backing seed `seed`: distinct,
/// reproducible f32 words filling the window (`seed == 0` = cold zeroes,
/// matching the legacy properties).
fn window_words(seed: u64) -> Vec<f32> {
    (0..DATA_WINDOW / 4)
        .map(|i| {
            if seed == 0 {
                return 0.0;
            }
            let x = (seed ^ i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((x >> 40) as i64 - (1 << 23)) as f32 / 256.0
        })
        .collect()
}

/// Builds a terminating random program from raw entropy words: a fixed
/// preamble (r1 = DATA_BASE, loop bounds), one generated instruction per
/// word inside a counted loop, and a `Halt`.
fn build_program(words: &[u64], iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    b.push(Inst::Li {
        rd: Gpr(1),
        imm: DATA_BASE as i64,
    });
    b.push(Inst::Li {
        rd: Gpr(30),
        imm: 0,
    });
    b.push(Inst::Li {
        rd: Gpr(31),
        imm: iters,
    });
    let top = b.bind_new_label();
    for &w in words {
        push_random_inst(&mut b, w);
    }
    b.push(Inst::Addi {
        rd: Gpr(30),
        rs: Gpr(30),
        imm: 1,
    });
    b.branch_lt(Gpr(30), Gpr(31), top);
    b.push(Inst::Halt);
    b.build().expect("generated program is structurally valid")
}

/// Derives one instruction from an entropy word. Scratch registers are
/// r2..r9 / f0..f7 / v1..v5; r1 (data base) and r30/r31 (loop) are never
/// written, so memory accesses always stay inside the data window.
fn push_random_inst(b: &mut ProgramBuilder, w: u64) {
    let g = |n: u64| Gpr(2 + (n % 8) as u8);
    let f = |n: u64| Fpr((n % 8) as u8);
    let v = |n: u64| Vr(1 + (n % 5) as u8);
    // Word-aligned offset leaving room for the widest (8-lane) access.
    let off = |n: u64| (4 * (n % ((DATA_WINDOW - 32) / 4))) as i64;
    let a = w >> 8;
    let b2 = w >> 20;
    let c = w >> 32;
    match w % 24 {
        0 => {
            b.push(Inst::Li {
                rd: g(a),
                imm: (b2 % 1000) as i64 - 500,
            });
        }
        1 => {
            b.push(Inst::Addi {
                rd: g(a),
                rs: g(b2),
                imm: (c % 64) as i64 - 32,
            });
        }
        2 => {
            b.push(Inst::Add {
                rd: g(a),
                rs1: g(b2),
                rs2: g(c),
            });
        }
        3 => {
            b.push(Inst::Sub {
                rd: g(a),
                rs1: g(b2),
                rs2: g(c),
            });
        }
        4 => {
            b.push(Inst::Mul {
                rd: g(a),
                rs1: g(b2),
                rs2: g(c),
            });
        }
        5 => {
            b.push(Inst::Slli {
                rd: g(a),
                rs: g(b2),
                shamt: (c % 8) as u8,
            });
        }
        6 => {
            b.push(Inst::Mv {
                rd: g(a),
                rs: g(b2),
            });
        }
        7 => {
            b.push(Inst::Ld {
                rd: g(a),
                rs: Gpr(1),
                imm: off(b2) & !7,
            });
        }
        8 => {
            b.push(Inst::Sd {
                rval: g(a),
                rs: Gpr(1),
                imm: off(b2) & !7,
            });
        }
        9 => {
            b.push(Inst::Fli {
                fd: f(a),
                imm: (b2 % 4096) as f32 / 16.0 - 128.0,
            });
        }
        10 => {
            b.push(Inst::Flw {
                fd: f(a),
                rs: Gpr(1),
                imm: off(b2),
            });
        }
        11 => {
            b.push(Inst::Fsw {
                fval: f(a),
                rs: Gpr(1),
                imm: off(b2),
            });
        }
        12 => {
            b.push(Inst::Fadd {
                fd: f(a),
                fs1: f(b2),
                fs2: f(c),
            });
        }
        13 => {
            b.push(Inst::Fmul {
                fd: f(a),
                fs1: f(b2),
                fs2: f(c),
            });
        }
        14 => {
            b.push(Inst::Fmadd {
                fd: f(a),
                fs1: f(b2),
                fs2: f(c),
                fs3: f(w >> 44),
            });
        }
        15 => {
            b.push(Inst::Fdiv {
                fd: f(a),
                fs1: f(b2),
                fs2: f(c),
            });
        }
        16 => {
            b.push(Inst::Fcvt {
                fd: f(a),
                rs: g(b2),
            });
        }
        17 => {
            b.push(Inst::Vsplat {
                vd: v(a),
                imm: (b2 % 256) as f32 / 4.0,
            });
        }
        18 => {
            b.push(Inst::Vload {
                vd: v(a),
                rs: Gpr(1),
                imm: off(b2),
            });
        }
        19 => {
            b.push(Inst::Vstore {
                vval: v(a),
                rs: Gpr(1),
                imm: off(b2),
            });
        }
        20 => {
            b.push(Inst::Vfma {
                vd: v(a),
                vs1: v(b2),
                vs2: v(c),
            });
        }
        21 => {
            b.push(Inst::Vredsum {
                fd: f(a),
                vs: v(b2),
            });
        }
        22 => {
            // Branch whose target is the next instruction: taken and
            // not-taken paths converge, exercising both outcomes of the
            // conditional-branch machinery without diverging control.
            let next = b.new_label();
            b.branch_ne(g(a), g(b2), next);
            b.bind(next);
        }
        _ => {
            let next = b.new_label();
            b.jump(next);
            b.bind(next);
        }
    }
}

struct RunOutput {
    stats: simtune::isa::SimStats,
    completed: bool,
    gprs: Vec<i64>,
    fpr_bits: Vec<u32>,
    vr_bits: Vec<Vec<u32>>,
    mem_bits: Vec<u32>,
}

fn capture(
    stats: simtune::isa::SimStats,
    completed: bool,
    cpu: &AtomicCpu,
    mem: &Memory,
) -> RunOutput {
    RunOutput {
        stats,
        completed,
        gprs: (0..32).map(|r| cpu.gpr(Gpr(r))).collect(),
        fpr_bits: (0..32).map(|r| cpu.fpr(Fpr(r)).to_bits()).collect(),
        vr_bits: (0..32)
            .map(|r| cpu.vr(Vr(r)).iter().map(|x| x.to_bits()).collect())
            .collect(),
        mem_bits: mem
            .read_f32_slice(DATA_BASE, (DATA_WINDOW / 4) as usize)
            .expect("window readable")
            .into_iter()
            .map(f32::to_bits)
            .collect(),
    }
}

/// Runs one engine over a cold data window with an optional prefix
/// budget (the dimension the shared harness does not cover).
fn run_engine<E: ExecEngine>(engine: &E, target: &TargetIsa, budget: Option<u64>) -> RunOutput {
    let mut cpu = AtomicCpu::new(target);
    let mut mem = Memory::new();
    let mut hier = CacheHierarchy::new(HierarchyConfig::tiny_for_tests());
    let (stats, completed) = match budget {
        Some(n) => engine
            .run_prefix_with_hook(
                &mut cpu,
                &mut mem,
                &mut hier,
                RunLimits::default(),
                n,
                &mut NoopHook,
            )
            .expect("prefix run succeeds"),
        None => (
            engine
                .run_with_hook(
                    &mut cpu,
                    &mut mem,
                    &mut hier,
                    RunLimits::default(),
                    &mut NoopHook,
                )
                .expect("run succeeds"),
            true,
        ),
    };
    capture(stats, completed, &cpu, &mem)
}

fn assert_outputs_identical(a: &RunOutput, b: &RunOutput) {
    assert_eq!(a.stats, b.stats, "SimStats must be byte-identical");
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.gprs, b.gprs, "integer register files diverged");
    assert_eq!(a.fpr_bits, b.fpr_bits, "float register files diverged");
    assert_eq!(a.vr_bits, b.vr_bits, "vector register files diverged");
    assert_eq!(a.mem_bits, b.mem_bits, "memory images diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(48)))]

    /// Random flat-loop programs through the shared differential matrix:
    /// every engine's full observable state vs the interpreter, every
    /// fidelity tier's contract vs accurate, and pooled multi-worker
    /// sessions (whose 3-trial batches run divergent per-lane data
    /// images) vs direct single-threaded runs.
    #[test]
    fn random_programs_agree_across_the_full_matrix(
        words in prop::collection::vec(0u64..u64::MAX, 4..40),
        iters in 1i64..8,
        target_sel in 0usize..3,
        data_seed in any::<u64>(),
    ) {
        let target = TargetIsa::paper_targets()[target_sel].clone();
        let prog = build_program(&words, iters);
        let decoded = DecodedProgram::decode(&prog, &target).expect("decodes");
        prop_assert_eq!(decoded.len(), prog.len());
        let exe = Executable::new("prop-random", prog, target)
            .with_segment(DATA_BASE, window_words(data_seed));
        assert_matrix_agrees(&exe);
    }

    /// Mini-torture programs (nested loops, irregular forward branches,
    /// guarded fault sites) through the same matrix — the proptest twin
    /// of the `torture_fuzz` gate.
    #[test]
    fn torture_programs_agree_across_the_full_matrix(seed in any::<u64>()) {
        let exe = DiffHarness::make_executable(
            "prop",
            &TortureConfig::baseline(),
            seed,
            seed ^ 0x5EED_DA7A,
        );
        assert_matrix_agrees(&exe);
    }

    /// Prefix runs: decoded replay stops at the same retirement as the
    /// interpreter with the same partial state, for budgets below and
    /// above the full length.
    #[test]
    fn decoded_prefix_runs_match_interpreter(
        words in prop::collection::vec(0u64..u64::MAX, 4..24),
        iters in 2i64..6,
        budget_percent in 5u64..150,
    ) {
        let target = &TargetIsa::arm_cortex_a72();
        let prog = build_program(&words, iters);
        let decoded = DecodedProgram::decode(&prog, target).expect("decodes");

        let full = run_engine(&InterpEngine::new(&prog), target, None);
        let total = full.stats.inst_mix.total();
        let budget = (total * budget_percent / 100).max(1);

        let interp = run_engine(&InterpEngine::new(&prog), target, Some(budget));
        let fast = run_engine(&DecodedEngine::new(&decoded), target, Some(budget));
        assert_outputs_identical(&interp, &fast);
        prop_assert_eq!(interp.completed, budget_percent >= 100);
    }

    /// Threaded prefix runs stop at the same retirement as the
    /// interpreter, with identical partial state.
    #[test]
    fn threaded_prefix_runs_match_interpreter(
        words in prop::collection::vec(0u64..u64::MAX, 4..24),
        iters in 2i64..6,
        budget_percent in 5u64..150,
    ) {
        let target = &TargetIsa::arm_cortex_a72();
        let prog = build_program(&words, iters);
        let decoded = DecodedProgram::decode(&prog, target).expect("decodes");
        let threaded = ThreadedProgram::lower(&decoded);

        let full = run_engine(&InterpEngine::new(&prog), target, None);
        let total = full.stats.inst_mix.total();
        let budget = (total * budget_percent / 100).max(1);

        let interp = run_engine(&InterpEngine::new(&prog), target, Some(budget));
        let fast = run_engine(&ThreadedEngine::new(&threaded), target, Some(budget));
        assert_outputs_identical(&interp, &fast);
        prop_assert_eq!(interp.completed, budget_percent >= 100);
    }
}
