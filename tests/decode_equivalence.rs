//! Differential property suite: every replay engine must be
//! observationally identical to the re-decoding interpreter.
//!
//! Randomized programs (arithmetic, float, vector, memory and control
//! instructions inside a counted loop) run on every rung of the replay
//! ladder — [`InterpEngine`], [`DecodedEngine`], [`ThreadedEngine`] and
//! the SoA [`BatchEngine`] — from identical cold state; every
//! architectural output — `SimStats`, register files, memory image —
//! must match bit-for-bit, and prefix runs must stop at the same
//! instruction. Floats are compared through their bit patterns so
//! NaN-producing programs (e.g. `fdiv 0/0`) still compare exactly. The
//! seeded mini-torture generator ([`torture_program`]) adds nested
//! loops and irregular forward branches on top of the flat loop the
//! local generator emits.
//!
//! `PROPTEST_CASES` scales every property's case count (the vendored
//! proptest has no env support of its own) — CI's engine-equivalence
//! step raises it well above the local default.

use proptest::prelude::*;
use simtune::cache::{CacheHierarchy, HierarchyConfig};
use simtune::isa::{
    torture_program, AtomicCpu, BatchEngine, BatchLane, DecodedEngine, DecodedProgram, ExecEngine,
    Fpr, Gpr, Inst, InterpEngine, Memory, NoopHook, Program, ProgramBuilder, RunLimits, TargetIsa,
    ThreadedEngine, ThreadedProgram, Vr, DATA_BASE,
};

/// Bytes of the data window the generated programs read and write.
const DATA_WINDOW: u64 = 2048;

/// Case count for one property: the `PROPTEST_CASES` environment
/// variable when set (CI's equivalence step raises it), `default`
/// otherwise.
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Builds a terminating random program from raw entropy words: a fixed
/// preamble (r1 = DATA_BASE, loop bounds), one generated instruction per
/// word inside a counted loop, and a `Halt`.
fn build_program(words: &[u64], iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    b.push(Inst::Li {
        rd: Gpr(1),
        imm: DATA_BASE as i64,
    });
    b.push(Inst::Li {
        rd: Gpr(30),
        imm: 0,
    });
    b.push(Inst::Li {
        rd: Gpr(31),
        imm: iters,
    });
    let top = b.bind_new_label();
    for &w in words {
        push_random_inst(&mut b, w);
    }
    b.push(Inst::Addi {
        rd: Gpr(30),
        rs: Gpr(30),
        imm: 1,
    });
    b.branch_lt(Gpr(30), Gpr(31), top);
    b.push(Inst::Halt);
    b.build().expect("generated program is structurally valid")
}

/// Derives one instruction from an entropy word. Scratch registers are
/// r2..r9 / f0..f7 / v1..v5; r1 (data base) and r30/r31 (loop) are never
/// written, so memory accesses always stay inside the data window.
fn push_random_inst(b: &mut ProgramBuilder, w: u64) {
    let g = |n: u64| Gpr(2 + (n % 8) as u8);
    let f = |n: u64| Fpr((n % 8) as u8);
    let v = |n: u64| Vr(1 + (n % 5) as u8);
    // Word-aligned offset leaving room for the widest (8-lane) access.
    let off = |n: u64| (4 * (n % ((DATA_WINDOW - 32) / 4))) as i64;
    let a = w >> 8;
    let b2 = w >> 20;
    let c = w >> 32;
    match w % 24 {
        0 => {
            b.push(Inst::Li {
                rd: g(a),
                imm: (b2 % 1000) as i64 - 500,
            });
        }
        1 => {
            b.push(Inst::Addi {
                rd: g(a),
                rs: g(b2),
                imm: (c % 64) as i64 - 32,
            });
        }
        2 => {
            b.push(Inst::Add {
                rd: g(a),
                rs1: g(b2),
                rs2: g(c),
            });
        }
        3 => {
            b.push(Inst::Sub {
                rd: g(a),
                rs1: g(b2),
                rs2: g(c),
            });
        }
        4 => {
            b.push(Inst::Mul {
                rd: g(a),
                rs1: g(b2),
                rs2: g(c),
            });
        }
        5 => {
            b.push(Inst::Slli {
                rd: g(a),
                rs: g(b2),
                shamt: (c % 8) as u8,
            });
        }
        6 => {
            b.push(Inst::Mv {
                rd: g(a),
                rs: g(b2),
            });
        }
        7 => {
            b.push(Inst::Ld {
                rd: g(a),
                rs: Gpr(1),
                imm: off(b2) & !7,
            });
        }
        8 => {
            b.push(Inst::Sd {
                rval: g(a),
                rs: Gpr(1),
                imm: off(b2) & !7,
            });
        }
        9 => {
            b.push(Inst::Fli {
                fd: f(a),
                imm: (b2 % 4096) as f32 / 16.0 - 128.0,
            });
        }
        10 => {
            b.push(Inst::Flw {
                fd: f(a),
                rs: Gpr(1),
                imm: off(b2),
            });
        }
        11 => {
            b.push(Inst::Fsw {
                fval: f(a),
                rs: Gpr(1),
                imm: off(b2),
            });
        }
        12 => {
            b.push(Inst::Fadd {
                fd: f(a),
                fs1: f(b2),
                fs2: f(c),
            });
        }
        13 => {
            b.push(Inst::Fmul {
                fd: f(a),
                fs1: f(b2),
                fs2: f(c),
            });
        }
        14 => {
            b.push(Inst::Fmadd {
                fd: f(a),
                fs1: f(b2),
                fs2: f(c),
                fs3: f(w >> 44),
            });
        }
        15 => {
            b.push(Inst::Fdiv {
                fd: f(a),
                fs1: f(b2),
                fs2: f(c),
            });
        }
        16 => {
            b.push(Inst::Fcvt {
                fd: f(a),
                rs: g(b2),
            });
        }
        17 => {
            b.push(Inst::Vsplat {
                vd: v(a),
                imm: (b2 % 256) as f32 / 4.0,
            });
        }
        18 => {
            b.push(Inst::Vload {
                vd: v(a),
                rs: Gpr(1),
                imm: off(b2),
            });
        }
        19 => {
            b.push(Inst::Vstore {
                vval: v(a),
                rs: Gpr(1),
                imm: off(b2),
            });
        }
        20 => {
            b.push(Inst::Vfma {
                vd: v(a),
                vs1: v(b2),
                vs2: v(c),
            });
        }
        21 => {
            b.push(Inst::Vredsum {
                fd: f(a),
                vs: v(b2),
            });
        }
        22 => {
            // Branch whose target is the next instruction: taken and
            // not-taken paths converge, exercising both outcomes of the
            // conditional-branch machinery without diverging control.
            let next = b.new_label();
            b.branch_ne(g(a), g(b2), next);
            b.bind(next);
        }
        _ => {
            let next = b.new_label();
            b.jump(next);
            b.bind(next);
        }
    }
}

struct RunOutput {
    stats: simtune::isa::SimStats,
    completed: bool,
    gprs: Vec<i64>,
    fpr_bits: Vec<u32>,
    vr_bits: Vec<Vec<u32>>,
    mem_bits: Vec<u32>,
}

/// Deterministically fills the data window from `seed` so lanes (and
/// their solo reference runs) start from distinct, reproducible images.
/// `seed == 0` leaves the window cold (all zeroes), matching the legacy
/// properties.
fn seed_memory(mem: &mut Memory, seed: u64) {
    if seed == 0 {
        return;
    }
    let words: Vec<f32> = (0..DATA_WINDOW / 4)
        .map(|i| {
            let x = (seed ^ i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((x >> 40) as i64 - (1 << 23)) as f32 / 256.0
        })
        .collect();
    mem.write_f32_slice(DATA_BASE, &words)
        .expect("window writable");
}

fn capture(
    stats: simtune::isa::SimStats,
    completed: bool,
    cpu: &AtomicCpu,
    mem: &Memory,
) -> RunOutput {
    RunOutput {
        stats,
        completed,
        gprs: (0..32).map(|r| cpu.gpr(Gpr(r))).collect(),
        fpr_bits: (0..32).map(|r| cpu.fpr(Fpr(r)).to_bits()).collect(),
        vr_bits: (0..32)
            .map(|r| cpu.vr(Vr(r)).iter().map(|x| x.to_bits()).collect())
            .collect(),
        mem_bits: mem
            .read_f32_slice(DATA_BASE, (DATA_WINDOW / 4) as usize)
            .expect("window readable")
            .into_iter()
            .map(f32::to_bits)
            .collect(),
    }
}

fn run_engine_seeded<E: ExecEngine>(
    engine: &E,
    target: &TargetIsa,
    budget: Option<u64>,
    seed: u64,
) -> RunOutput {
    let mut cpu = AtomicCpu::new(target);
    let mut mem = Memory::new();
    seed_memory(&mut mem, seed);
    let mut hier = CacheHierarchy::new(HierarchyConfig::tiny_for_tests());
    let (stats, completed) = match budget {
        Some(n) => engine
            .run_prefix_with_hook(
                &mut cpu,
                &mut mem,
                &mut hier,
                RunLimits::default(),
                n,
                &mut NoopHook,
            )
            .expect("prefix run succeeds"),
        None => (
            engine
                .run_with_hook(
                    &mut cpu,
                    &mut mem,
                    &mut hier,
                    RunLimits::default(),
                    &mut NoopHook,
                )
                .expect("run succeeds"),
            true,
        ),
    };
    capture(stats, completed, &cpu, &mem)
}

fn run_engine<E: ExecEngine>(engine: &E, target: &TargetIsa, budget: Option<u64>) -> RunOutput {
    run_engine_seeded(engine, target, budget, 0)
}

/// Runs `decoded` as one SoA batch: lane `l` starts from the window
/// seeded with `seeds[l]`. Every lane must complete (the generated
/// programs terminate under default limits).
fn run_batch(decoded: &DecodedProgram, target: &TargetIsa, seeds: &[u64]) -> Vec<RunOutput> {
    let n = seeds.len();
    let mut cpus: Vec<AtomicCpu> = (0..n).map(|_| AtomicCpu::new(target)).collect();
    let mut mems: Vec<Memory> = seeds
        .iter()
        .map(|&s| {
            let mut m = Memory::new();
            seed_memory(&mut m, s);
            m
        })
        .collect();
    let mut hiers: Vec<CacheHierarchy> = (0..n)
        .map(|_| CacheHierarchy::new(HierarchyConfig::tiny_for_tests()))
        .collect();
    let mut hooks: Vec<NoopHook> = (0..n).map(|_| NoopHook).collect();
    let mut lanes: Vec<BatchLane<'_, NoopHook>> = cpus
        .iter_mut()
        .zip(mems.iter_mut())
        .zip(hiers.iter_mut())
        .zip(hooks.iter_mut())
        .map(|(((cpu, mem), hier), hook)| BatchLane {
            cpu,
            mem,
            hier,
            hook,
        })
        .collect();
    let outcomes = BatchEngine::new(decoded).run_lanes(&mut lanes, RunLimits::default());
    drop(lanes);
    outcomes
        .into_iter()
        .enumerate()
        .map(|(l, r)| capture(r.expect("lane completes"), true, &cpus[l], &mems[l]))
        .collect()
}

fn assert_outputs_identical(a: &RunOutput, b: &RunOutput) {
    assert_eq!(a.stats, b.stats, "SimStats must be byte-identical");
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.gprs, b.gprs, "integer register files diverged");
    assert_eq!(a.fpr_bits, b.fpr_bits, "float register files diverged");
    assert_eq!(a.vr_bits, b.vr_bits, "vector register files diverged");
    assert_eq!(a.mem_bits, b.mem_bits, "memory images diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(48)))]

    /// Full runs: both engines from cold state, every observable equal.
    #[test]
    fn decoded_engine_is_observationally_identical(
        words in prop::collection::vec(0u64..u64::MAX, 4..40),
        iters in 1i64..8,
        target_sel in 0usize..3,
    ) {
        let target = &TargetIsa::paper_targets()[target_sel];
        let prog = build_program(&words, iters);
        let decoded = DecodedProgram::decode(&prog, target).expect("decodes");
        prop_assert_eq!(decoded.len(), prog.len());

        let interp = run_engine(&InterpEngine::new(&prog), target, None);
        let fast = run_engine(&DecodedEngine::new(&decoded), target, None);
        assert_outputs_identical(&interp, &fast);
    }

    /// Prefix runs: both engines stop at the same retirement with the
    /// same partial state, for budgets below and above the full length.
    #[test]
    fn decoded_prefix_runs_match_interpreter(
        words in prop::collection::vec(0u64..u64::MAX, 4..24),
        iters in 2i64..6,
        budget_percent in 5u64..150,
    ) {
        let target = &TargetIsa::arm_cortex_a72();
        let prog = build_program(&words, iters);
        let decoded = DecodedProgram::decode(&prog, target).expect("decodes");

        let full = run_engine(&InterpEngine::new(&prog), target, None);
        let total = full.stats.inst_mix.total();
        let budget = (total * budget_percent / 100).max(1);

        let interp = run_engine(&InterpEngine::new(&prog), target, Some(budget));
        let fast = run_engine(&DecodedEngine::new(&decoded), target, Some(budget));
        assert_outputs_identical(&interp, &fast);
        prop_assert_eq!(interp.completed, budget_percent >= 100);
    }

    /// Threaded-code dispatch: pre-bound handlers with pre-resolved
    /// successors must replay exactly what the interpreter executes.
    #[test]
    fn threaded_engine_is_observationally_identical(
        words in prop::collection::vec(0u64..u64::MAX, 4..40),
        iters in 1i64..8,
        target_sel in 0usize..3,
    ) {
        let target = &TargetIsa::paper_targets()[target_sel];
        let prog = build_program(&words, iters);
        let decoded = DecodedProgram::decode(&prog, target).expect("decodes");
        let threaded = ThreadedProgram::lower(&decoded);
        prop_assert_eq!(threaded.len(), prog.len());

        let interp = run_engine(&InterpEngine::new(&prog), target, None);
        let fast = run_engine(&ThreadedEngine::new(&threaded), target, None);
        assert_outputs_identical(&interp, &fast);
    }

    /// Threaded prefix runs stop at the same retirement as the
    /// interpreter, with identical partial state.
    #[test]
    fn threaded_prefix_runs_match_interpreter(
        words in prop::collection::vec(0u64..u64::MAX, 4..24),
        iters in 2i64..6,
        budget_percent in 5u64..150,
    ) {
        let target = &TargetIsa::arm_cortex_a72();
        let prog = build_program(&words, iters);
        let decoded = DecodedProgram::decode(&prog, target).expect("decodes");
        let threaded = ThreadedProgram::lower(&decoded);

        let full = run_engine(&InterpEngine::new(&prog), target, None);
        let total = full.stats.inst_mix.total();
        let budget = (total * budget_percent / 100).max(1);

        let interp = run_engine(&InterpEngine::new(&prog), target, Some(budget));
        let fast = run_engine(&ThreadedEngine::new(&threaded), target, Some(budget));
        assert_outputs_identical(&interp, &fast);
        prop_assert_eq!(interp.completed, budget_percent >= 100);
    }

    /// SoA batch replay: each lane starts from its own seeded data
    /// image (so data-dependent loads and branches diverge the lanes)
    /// and must end bit-identical to a solo interpreter run from the
    /// same image.
    #[test]
    fn batched_lanes_match_solo_interpreter_runs(
        words in prop::collection::vec(0u64..u64::MAX, 4..32),
        iters in 1i64..6,
        target_sel in 0usize..3,
        seeds in prop::collection::vec(1u64..u64::MAX, 1..5),
    ) {
        let target = &TargetIsa::paper_targets()[target_sel];
        let prog = build_program(&words, iters);
        let decoded = DecodedProgram::decode(&prog, target).expect("decodes");

        let lanes = run_batch(&decoded, target, &seeds);
        for (lane, &seed) in lanes.iter().zip(&seeds) {
            let solo = run_engine_seeded(&InterpEngine::new(&prog), target, None, seed);
            assert_outputs_identical(&solo, lane);
        }
    }

    /// Mini-torture programs (nested loops, irregular forward branches)
    /// agree across the whole replay ladder: interp vs decoded vs
    /// threaded solo runs, and a divergent 3-lane SoA batch vs solo
    /// reference runs.
    #[test]
    fn torture_programs_agree_across_all_engines(seed in any::<u64>()) {
        let target = &TargetIsa::paper_targets()[(seed % 3) as usize];
        let prog = torture_program(seed);
        let decoded = DecodedProgram::decode(&prog, target).expect("decodes");
        let threaded = ThreadedProgram::lower(&decoded);

        let interp = run_engine(&InterpEngine::new(&prog), target, None);
        assert_outputs_identical(&interp, &run_engine(&DecodedEngine::new(&decoded), target, None));
        assert_outputs_identical(&interp, &run_engine(&ThreadedEngine::new(&threaded), target, None));

        let seeds = [seed | 1, seed ^ 0xABCD_EF01, seed.rotate_left(17) | 1];
        let lanes = run_batch(&decoded, target, &seeds);
        for (lane, &s) in lanes.iter().zip(&seeds) {
            let solo = run_engine_seeded(&InterpEngine::new(&prog), target, None, s);
            assert_outputs_identical(&solo, lane);
        }
    }
}
