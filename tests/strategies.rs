//! Acceptance tests for the pluggable search-strategy subsystem as seen
//! through the `simtune` façade: the default strategy is plain random
//! search, and at least one non-random strategy reaches an
//! equal-or-better conv2d candidate on a strictly smaller simulation
//! budget — the Pac-Sim/CAPSim argument that candidate selection
//! matters once simulation is cheap.

use simtune::core::{
    collect_group_data, tune_with_predictor, CollectOptions, HardwareRunner, KernelBuilder,
    ScorePredictor, StrategySpec, TuneOptions,
};
use simtune::hw::TargetSpec;
use simtune::predict::PredictorKind;
use simtune::tensor::{conv2d_bias_relu, ComputeDef, Conv2dShape};

fn conv_workload() -> (ComputeDef, TargetSpec, ScorePredictor) {
    let def = conv2d_bias_relu(&Conv2dShape {
        n: 1,
        h: 10,
        w: 12,
        co: 8,
        ci: 4,
        kh: 3,
        kw: 3,
        stride: (1, 1),
        pad: (1, 1),
    });
    let spec = TargetSpec::riscv_u74();
    let data = collect_group_data(
        &def,
        &spec,
        0,
        &CollectOptions {
            n_impls: 30,
            n_parallel: 4,
            seed: 31,
            max_attempts_factor: 40,
            ..CollectOptions::default()
        },
    )
    .expect("collects");
    let mut predictor = ScorePredictor::new(PredictorKind::Xgboost, "riscv", "conv", 2);
    predictor
        .train(std::slice::from_ref(&data))
        .expect("trains");
    (def, spec, predictor)
}

/// Measures a tuning winner on the emulated board (fixed noise index, so
/// both flows are measured under identical conditions).
fn measure_winner(def: &ComputeDef, spec: &TargetSpec, result: &simtune::core::TuneResult) -> f64 {
    let builder = KernelBuilder::new(def.clone(), spec.isa.clone());
    let exe = builder
        .build(&result.best().schedule, "winner")
        .expect("builds");
    HardwareRunner::new(spec.clone())
        .run_one(&exe, 0)
        .expect("measures")
        .t_ref
}

#[test]
fn guided_search_matches_random_on_a_smaller_simulation_budget() {
    let (def, spec, predictor) = conv_workload();

    // The baseline: random search over the full budget.
    let random = tune_with_predictor(
        &def,
        &spec,
        &predictor,
        &TuneOptions {
            n_trials: 32,
            batch_size: 8,
            n_parallel: 4,
            seed: 11,
            ..TuneOptions::default()
        },
    )
    .expect("random tunes");
    let random_time = measure_winner(&def, &spec, &random);

    // A guided strategy on a strictly smaller budget must reach an
    // equal-or-better winner. At least one of the non-random strategies
    // has to clear the bar — the subsystem's reason to exist.
    let mut cleared = Vec::new();
    for strategy in [
        StrategySpec::HillClimb,
        StrategySpec::Evolutionary,
        StrategySpec::Annealing,
    ] {
        let label = strategy.label();
        let guided = tune_with_predictor(
            &def,
            &spec,
            &predictor,
            &TuneOptions {
                n_trials: 20,
                batch_size: 5,
                n_parallel: 4,
                seed: 11,
                strategy,
                ..TuneOptions::default()
            },
        )
        .expect("guided tunes");
        assert!(
            guided.simulations < random.simulations,
            "{label}: budget not smaller ({} vs {})",
            guided.simulations,
            random.simulations
        );
        let guided_time = measure_winner(&def, &spec, &guided);
        if guided_time <= random_time {
            cleared.push((label, guided.simulations, guided_time));
        }
    }
    assert!(
        !cleared.is_empty(),
        "no guided strategy matched random's winner ({random_time:.6}s at {} sims)",
        random.simulations
    );
}

#[test]
fn default_strategy_is_random_search() {
    let opts = TuneOptions::default();
    assert_eq!(opts.strategy.label(), "random");
    let (def, spec, predictor) = conv_workload();
    let result = tune_with_predictor(
        &def,
        &spec,
        &predictor,
        &TuneOptions {
            n_trials: 8,
            batch_size: 4,
            n_parallel: 2,
            ..TuneOptions::default()
        },
    )
    .expect("tunes");
    assert_eq!(result.strategy, "random");
    assert_eq!(result.convergence.observed, 8);
    assert_eq!(result.simulations, 8);
}
