//! Acceptance tests for the `SimBackend` API as seen through the
//! `simtune` façade: one candidate batch on all three fidelity tiers,
//! and the fidelity-escalation autotune mode matching accurate-only
//! tuning at a fraction of the accurate-simulation cost.

use simtune::core::{
    collect_group_data, tune_with_fidelity_escalation, tune_with_predictor, CollectOptions,
    EscalationOptions, KernelBuilder, ScorePredictor, SimCache, TuneOptions,
};
use simtune::hw::TargetSpec;
use simtune::predict::PredictorKind;
use simtune::tensor::{matmul, ComputeDef, Schedule};
use simtune::SimSession;
use std::sync::Arc;

fn matmul_workload() -> (ComputeDef, TargetSpec) {
    (matmul(8, 8, 8), TargetSpec::riscv_u74())
}

#[test]
fn sim_session_runs_one_batch_on_all_three_backends() {
    let (def, spec) = matmul_workload();
    let builder = KernelBuilder::new(def.clone(), spec.isa.clone());
    let schedule = Schedule::default_for(&def);
    let exes: Vec<_> = (0..4)
        .map(|i| builder.build(&schedule, &format!("mm{i}")).unwrap())
        .collect();

    let sessions = [
        SimSession::builder().accurate(&spec.hierarchy),
        SimSession::builder().fast_count(&spec.hierarchy),
        SimSession::builder().sampled(&spec.hierarchy, 0.5),
    ];
    let mut seen_backends = Vec::new();
    let mut totals = Vec::new();
    for b in sessions {
        let session = b.n_parallel(2).build().expect("session builds");
        let reports = session.run(&exes);
        assert_eq!(reports.len(), exes.len());
        for r in &reports {
            let r = r.as_ref().expect("candidate simulates");
            assert_eq!(r.backend, session.backend_name());
            assert!(r.stats.inst_mix.total() > 0);
        }
        seen_backends.push(session.backend_name().to_string());
        totals.push(reports[0].as_ref().unwrap().stats.inst_mix.total());
    }
    assert_eq!(seen_backends, ["accurate", "fast-count", "sampled"]);
    // All tiers execute the same functional program: identical candidate,
    // near-identical work estimate (exact for accurate/fast-count).
    assert_eq!(totals[0], totals[1]);
    let err = totals[2].abs_diff(totals[0]) as f64 / totals[0] as f64;
    assert!(err < 0.05, "sampled estimate off by {err}");
}

#[test]
fn fidelity_escalation_matches_accurate_only_with_fewer_accurate_runs() {
    let (def, spec) = matmul_workload();
    let data = collect_group_data(
        &def,
        &spec,
        0,
        &CollectOptions {
            n_impls: 16,
            n_parallel: 4,
            seed: 5,
            max_attempts_factor: 40,
            ..CollectOptions::default()
        },
    )
    .unwrap();
    let mut predictor = ScorePredictor::new(PredictorKind::LinReg, "riscv", "matmul", 1);
    predictor.train(std::slice::from_ref(&data)).unwrap();

    // Same seed + default RandomSearch strategy ⇒ both flows see the
    // identical candidate stream (random search ignores feedback).
    let opts = TuneOptions {
        n_trials: 24,
        batch_size: 8,
        n_parallel: 4,
        seed: 9,
        ..Default::default()
    };
    let accurate_only =
        tune_with_predictor(&def, &spec, &predictor, &opts).expect("accurate-only tuning runs");

    let esc = EscalationOptions {
        top_k: 8,
        ..EscalationOptions::default()
    };
    let escalated = tune_with_fidelity_escalation(&def, &spec, &predictor, &opts, &esc)
        .expect("escalated tuning runs");

    assert_eq!(escalated.explore_backend, "fast-count");
    assert_eq!(escalated.final_backend, "accurate");
    // Fewer accurate simulations than the accurate-only flow's n_trials…
    assert!(escalated.accurate_runs <= esc.top_k);
    assert!(escalated.accurate_runs < opts.n_trials);
    // …while landing on the same best schedule.
    assert_eq!(
        escalated.result.best().schedule,
        accurate_only.best().schedule,
        "escalated best {:?} vs accurate-only best {:?}",
        escalated.result.best().description,
        accurate_only.best().description
    );
}

#[test]
fn memo_cache_dedupes_revisited_candidates_without_changing_results() {
    let (def, spec) = matmul_workload();
    let data = collect_group_data(
        &def,
        &spec,
        0,
        &CollectOptions {
            n_impls: 16,
            n_parallel: 4,
            seed: 5,
            max_attempts_factor: 40,
            ..CollectOptions::default()
        },
    )
    .unwrap();
    let mut predictor = ScorePredictor::new(PredictorKind::LinReg, "riscv", "matmul", 1);
    predictor.train(std::slice::from_ref(&data)).unwrap();

    let base = TuneOptions {
        n_trials: 16,
        batch_size: 8,
        n_parallel: 2,
        seed: 11,
        ..TuneOptions::default()
    };
    let run = |opts: &TuneOptions| {
        // Same seed ⇒ the default RandomSearch strategy proposes the
        // identical candidate stream on every invocation.
        tune_with_predictor(&def, &spec, &predictor, opts).expect("tuning runs")
    };

    // Two identical tuning runs without memoization: the reference.
    let cold_a = run(&base);
    let cold_b = run(&base);

    // The same two runs sharing one memo cache: the second run revisits
    // every candidate the first one simulated.
    let cache = Arc::new(SimCache::new());
    let memo_opts = TuneOptions {
        memo_cache: Some(cache.clone()),
        ..base.clone()
    };
    let warm_a = run(&memo_opts);
    let first_pass = cache.stats();
    let warm_b = run(&memo_opts);
    let second_pass = cache.stats();

    // Strictly fewer backend executions: every simulation of the second
    // run was answered from the cache (misses did not grow).
    assert_eq!(
        second_pass.misses, first_pass.misses,
        "revisited candidates must not execute the backend again"
    );
    assert!(
        second_pass.hits >= first_pass.hits + base.n_trials as u64,
        "each revisited trial must be a cache hit ({} -> {})",
        first_pass.hits,
        second_pass.hits
    );

    // Identical tuning results with the cache on and off.
    for (cold, warm) in [(&cold_a, &warm_a), (&cold_b, &warm_b)] {
        assert_eq!(cold.best_index, warm.best_index);
        assert_eq!(cold.history.len(), warm.history.len());
        for (x, y) in cold.history.iter().zip(&warm.history) {
            assert_eq!(x.description, y.description);
            assert_eq!(x.schedule, y.schedule);
            assert_eq!(x.score, y.score, "memoized stats must score identically");
        }
    }
}
