//! # simtune
//!
//! A reproduction of *"Introducing Instruction-Accurate Simulators for
//! Performance Estimation of Autotuning Workloads"* (DAC 2025): a simulator
//! interface that lets autotuning workloads run on instruction-accurate
//! simulators instead of real hardware, plus trained score predictors that
//! map simulator statistics to performance scores for x86-, ARM- and
//! RISC-V-like targets.
//!
//! This crate is a façade that re-exports the workspace crates under short
//! module names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`linalg`] | `simtune-linalg` | dense matrices, Cholesky/LU, statistics |
//! | [`cache`] | `simtune-cache` | set-associative cache hierarchy model |
//! | [`isa`] | `simtune-isa` | virtual ISA + instruction-accurate simulator |
//! | [`tensor`] | `simtune-tensor` | kernels, schedules, codegen, search spaces |
//! | [`hw`] | `simtune-hw` | timing-accurate targets + measurement harness |
//! | [`predict`] | `simtune-predict` | MLR, DNN, GP/Bayes, gradient-boosted trees |
//! | [`core`] | `simtune-core` | simulator interface + score-predictor workflow |
//!
//! # Simulator backends
//!
//! The simulator-integration surface is the [`SimBackend`] trait: any
//! instruction-accurate simulator can be plugged in behind the
//! autotuning runner. Three fidelity tiers ship in-tree —
//! [`AccurateBackend`] (full cache model), [`FastCountBackend`]
//! (instruction/access counting only) and [`SampledBackend`] (prefix
//! simulation + extrapolation) — and [`SimSession`] is the builder-style
//! entry point that runs candidate batches on whichever tier a tuning
//! round needs. Every session pre-decodes candidates once
//! ([`isa::DecodedProgram`]) and can attach a shared [`SimCache`] so
//! revisited candidates skip simulation entirely:
//!
//! ```no_run
//! use simtune::{SimSession, cache::HierarchyConfig};
//!
//! # fn main() -> Result<(), simtune::core::CoreError> {
//! let session = SimSession::builder()
//!     .fast_count(&HierarchyConfig::riscv_u74())
//!     .n_parallel(8)
//!     .build()?;
//! # let exes = vec![];
//! let reports = session.run(&exes);
//! # let _ = reports;
//! # Ok(())
//! # }
//! ```
//!
//! # Search strategies
//!
//! Which candidate to simulate next is pluggable: every tuning loop
//! takes a [`SearchStrategy`] selected through
//! [`core::TuneOptions::strategy`] as a [`StrategySpec`] — uniform
//! random (the default, bit-identical to the historical tuner),
//! exhaustive grid, hill climbing with restarts, evolutionary search,
//! simulated annealing, or any user-provided boxed strategy. All are
//! deterministic under [`core::TuneOptions::seed`] and report
//! [`ConvergenceStats`] on the result:
//!
//! ```no_run
//! use simtune::core::{tune_with_predictor, ScorePredictor, TuneOptions};
//! use simtune::StrategySpec;
//! # use simtune::predict::PredictorKind;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let def = simtune::tensor::matmul(16, 16, 16);
//! let spec = simtune::hw::TargetSpec::riscv_u74();
//! # let trained_predictor = ScorePredictor::new(PredictorKind::LinReg, "riscv", "matmul", 1);
//! let opts = TuneOptions {
//!     strategy: StrategySpec::Evolutionary,
//!     seed: 7,
//!     ..TuneOptions::default()
//! };
//! let result = tune_with_predictor(&def, &spec, &trained_predictor, &opts)?;
//! println!("{} converged after {} trials", result.strategy,
//!          result.convergence.trials_to_best);
//! # Ok(())
//! # }
//! ```
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end run: define a kernel,
//! generate schedule candidates, simulate them in parallel, train a score
//! predictor and pick the best implementation. `docs/ARCHITECTURE.md` in
//! the repository maps the full dataflow and every paper section to its
//! module.

// The backend and search APIs are the crate's headline surface; lift
// them to the root so `simtune::SimSession` / `simtune::SearchStrategy`
// work without spelling out the core crate.
pub use simtune_core::{
    tune_with_fidelity_escalation, AccurateBackend, BackendError, BackendRegistry, BatchTicket,
    ConvergenceStats, EscalatedTuneResult, EscalationOptions, EscalationPolicy, Evaluation,
    FastCountBackend, Fidelity, FnBackend, MemoCacheStats, OnlinePredictor, PredictedBackend,
    Prediction, Predictor, PredictorStats, SampledBackend, SearchSpace, SearchStrategy, SimBackend,
    SimCache, SimReport, SimSession, SimSessionBuilder, SketchSpace, StageTimings, StrategySpec,
    TemplateSpace, UncertaintyPolicy, WorkerPoolStats,
};

pub use simtune_cache as cache;
pub use simtune_core as core;
pub use simtune_hw as hw;
pub use simtune_isa as isa;
pub use simtune_linalg as linalg;
pub use simtune_predict as predict;
pub use simtune_tensor as tensor;
